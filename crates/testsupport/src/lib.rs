//! Shared helpers for tests and demos across the reqsched workspace.
//!
//! The offline dev container vendors stub versions of the crates.io
//! dependencies; the stub `serde_json` serializes fine but its deserializer
//! unconditionally errors. Every test or demo that round-trips through JSON
//! used to carry its own copy of the runtime probe for this — they now share
//! [`serde_is_stubbed`] / [`skip_if_serde_stubbed`], so the detection logic
//! (and its skip message) lives in exactly one place.

/// Whether the `serde_json` linked into this binary is the offline stub
/// (deserialization always errors). `false` on the real crates.io stack.
///
/// The probe is a runtime one — `from_str::<u32>("1")` succeeds on any real
/// serde_json — because the stub is swapped in at the source-replacement
/// layer and is invisible to `cfg`.
#[must_use]
pub fn serde_is_stubbed() -> bool {
    serde_json::from_str::<u32>("1").is_err()
}

/// Probe [`serde_is_stubbed`] and, when only the stub is available, print a
/// skip note naming `what` and return `true` so the caller can bail out.
///
/// ```
/// if reqsched_testsupport::skip_if_serde_stubbed("serde round-trip") {
///     return;
/// }
/// // ... round-trip through serde_json ...
/// ```
#[must_use]
pub fn skip_if_serde_stubbed(what: &str) -> bool {
    let stubbed = serde_is_stubbed();
    if stubbed {
        eprintln!("skipping {what}: serde_json deserialization is stubbed out in this environment");
    }
    stubbed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_agree() {
        assert_eq!(serde_is_stubbed(), skip_if_serde_stubbed("probe self-test"));
    }

    #[test]
    fn serialization_always_works() {
        // Both the stub and the real crate serialize without error; only
        // deserialization differs. The probe must not be confused by that
        // asymmetry, so pin the half the stub does support.
        assert!(serde_json::to_string(&7u32).is_ok());
    }
}
