//! # reqsched-workloads
//!
//! Randomized, reproducible workload generators for the data-server scenario
//! motivating the paper (video-on-demand, tele-teaching, OLTP): data items
//! are replicated on two disks, clients issue deadline-bound requests, and
//! the replica placement plus popularity skew determine how contended the
//! two-choice structure is.
//!
//! All generators are deterministic in their seed (ChaCha8), so sweeps are
//! replayable across threads and machines.
//!
//! * [`uniform_two_choice`] — each request picks two distinct resources
//!   uniformly; arrivals per round are fixed at `per_round` (the paper's
//!   adversary chooses arrival counts, so a constant-rate stream is the
//!   neutral baseline).
//! * [`zipf_replicated`] — a catalog of items with Zipf(α) popularity, each
//!   item replicated on two random disks at catalog creation (the
//!   random-duplicated-allocation scheme of Korst '97 cited by the paper);
//!   requests sample items by popularity.
//! * [`flash_crowd`] — background uniform traffic plus a burst window in
//!   which a single hot item (one fixed disk pair) absorbs most arrivals —
//!   the "high correlation" the paper's introduction warns about.
//! * [`single_alternative`] — every request names one uniformly random disk
//!   (Observation 3.1's setting, where EDF is optimal).
//! * [`clustered_two_choice`] — disks form hidden clusters under a seeded
//!   random id permutation; every request's two choices stay inside one
//!   cluster. Position-based partitioners cannot see the clusters (most
//!   requests straddle a range split); correlation-aware ones can.
//! * [`rotating_flash`] — contiguous clusters take turns: in each episode
//!   exactly one cluster receives all traffic and the rest are idle — the
//!   sharded engine's idle-skip showcase.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reqsched_model::{Alternatives, Hint, Instance, Round, TraceBuilder};

/// Sample two distinct resources uniformly.
fn two_distinct(rng: &mut ChaCha8Rng, n: u32) -> (u32, u32) {
    debug_assert!(n >= 2);
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

/// Constant-rate uniform two-choice arrivals.
///
/// `per_round` requests arrive in each of `rounds` rounds; each names two
/// distinct uniform resources and carries deadline `d`.
pub fn uniform_two_choice(n: u32, d: u32, per_round: u32, rounds: u64, seed: u64) -> Instance {
    assert!(n >= 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = TraceBuilder::new(d);
    for t in 0..rounds {
        for _ in 0..per_round {
            let (x, y) = two_distinct(&mut rng, n);
            b.push(Round(t), x, y);
        }
    }
    Instance::new(n, d, b.build())
}

/// Zipf(α) item popularity over a replicated catalog.
///
/// `items` data items are each placed on two distinct uniform disks when the
/// catalog is built; afterwards `per_round` requests per round sample items
/// with probability ∝ `1/rank^alpha` and inherit the item's disk pair. The
/// request's tag records the item index.
pub fn zipf_replicated(
    n: u32,
    d: u32,
    items: u32,
    alpha: f64,
    per_round: u32,
    rounds: u64,
    seed: u64,
) -> Instance {
    assert!(n >= 2 && items >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Catalog: item -> disk pair.
    let catalog: Vec<(u32, u32)> = (0..items).map(|_| two_distinct(&mut rng, n)).collect();
    // Zipf CDF.
    let weights: Vec<f64> = (1..=items as u64)
        .map(|r| 1.0 / (r as f64).powf(alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(items as usize);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let sample_item = |rng: &mut ChaCha8Rng| -> usize {
        let u: f64 = rng.gen();
        cdf.partition_point(|&c| c < u).min(items as usize - 1)
    };

    let mut b = TraceBuilder::new(d);
    for t in 0..rounds {
        for _ in 0..per_round {
            let item = sample_item(&mut rng);
            let (x, y) = catalog[item];
            b.push_full(
                Round(t),
                Alternatives::two(x.into(), y.into()),
                d,
                item as u32,
                Hint::default(),
            );
        }
    }
    Instance::new(n, d, b.build())
}

/// Uniform background traffic plus a flash crowd on one item.
///
/// During rounds `[burst_start, burst_start + burst_len)`, an additional
/// `burst_per_round` requests per round all target the hot item's fixed
/// disk pair `(0, 1)` (tag 1); background requests (tag 0) are uniform at
/// `base_per_round` throughout.
#[allow(clippy::too_many_arguments)] // lint: a workload spec reads best as named scalars
pub fn flash_crowd(
    n: u32,
    d: u32,
    base_per_round: u32,
    burst_per_round: u32,
    burst_start: u64,
    burst_len: u64,
    rounds: u64,
    seed: u64,
) -> Instance {
    assert!(n >= 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = TraceBuilder::new(d);
    for t in 0..rounds {
        for _ in 0..base_per_round {
            let (x, y) = two_distinct(&mut rng, n);
            b.push_full(
                Round(t),
                Alternatives::two(x.into(), y.into()),
                d,
                0,
                Hint::default(),
            );
        }
        if t >= burst_start && t < burst_start + burst_len {
            for _ in 0..burst_per_round {
                b.push_full(
                    Round(t),
                    Alternatives::two(0u32.into(), 1u32.into()),
                    d,
                    1,
                    Hint::default(),
                );
            }
        }
    }
    Instance::new(n, d, b.build())
}

/// Uniform arrivals with `c ≥ 1` distinct alternatives per request (the
/// paper's EDF remark: with `c` copies per data item EDF is
/// `c`-competitive; the matching-based strategies handle any `c`).
pub fn c_choice(n: u32, d: u32, c: u32, per_round: u32, rounds: u64, seed: u64) -> Instance {
    assert!(c >= 1 && n >= c, "need at least c distinct resources");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = TraceBuilder::new(d);
    let mut pool: Vec<u32> = (0..n).collect();
    for t in 0..rounds {
        for _ in 0..per_round {
            // Partial Fisher-Yates: first c entries become the alternatives.
            for i in 0..c as usize {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            let alts: Vec<reqsched_model::ResourceId> =
                pool[..c as usize].iter().map(|&r| r.into()).collect();
            b.push_full(Round(t), Alternatives::new(&alts), d, 0, Hint::default());
        }
    }
    Instance::new(n, d, b.build())
}

/// Two-choice arrivals with per-request deadlines drawn uniformly from
/// `1..=d_max` (the paper notes its EDF observations and the general model
/// tolerate heterogeneous deadlines).
pub fn mixed_deadlines(n: u32, d_max: u32, per_round: u32, rounds: u64, seed: u64) -> Instance {
    assert!(n >= 2 && d_max >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = TraceBuilder::new(d_max);
    for t in 0..rounds {
        for _ in 0..per_round {
            let (x, y) = two_distinct(&mut rng, n);
            let dl = rng.gen_range(1..=d_max);
            b.push_full(
                Round(t),
                Alternatives::two(x.into(), y.into()),
                dl,
                dl,
                Hint::default(),
            );
        }
    }
    Instance::new(n, d_max, b.build())
}

/// Cluster-local two-choice arrivals over a scrambled replica placement.
///
/// The `n` disks are split into `clusters` near-equal clusters, but cluster
/// membership is defined through a seeded random permutation of the ids —
/// adjacent ids usually belong to different clusters, so a position-based
/// (range) partition straddles almost every request, while a
/// correlation-aware partitioner can recover the clusters from the trace's
/// co-occurrence structure. Each request picks a cluster uniformly and two
/// distinct members of it; the tag records the cluster.
pub fn clustered_two_choice(
    n: u32,
    d: u32,
    clusters: u32,
    per_round: u32,
    rounds: u64,
    seed: u64,
) -> Instance {
    assert!(
        clusters >= 1 && n >= 2 * clusters,
        "need 2 disks per cluster"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Scrambled placement: cluster c owns every permuted id p[i] with
    // i % clusters == c.
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let members: Vec<Vec<u32>> = (0..clusters)
        .map(|c| {
            (0..n)
                .filter(|i| i % clusters == c)
                .map(|i| perm[i as usize])
                .collect()
        })
        .collect();
    let mut b = TraceBuilder::new(d);
    for t in 0..rounds {
        for _ in 0..per_round {
            let c = rng.gen_range(0..clusters);
            let m = &members[c as usize];
            let a = rng.gen_range(0..m.len());
            let mut bb = rng.gen_range(0..m.len() - 1);
            if bb >= a {
                bb += 1;
            }
            b.push_full(
                Round(t),
                Alternatives::two(m[a].into(), m[bb].into()),
                d,
                c,
                Hint::default(),
            );
        }
    }
    Instance::new(n, d, b.build())
}

/// Episodic flash traffic rotating over contiguous clusters.
///
/// The `n` disks split into `clusters` contiguous blocks and time splits
/// into episodes of `episode_len` rounds; during episode `e` only cluster
/// `e % clusters` receives traffic — `per_round` two-choice requests per
/// round between two distinct members of the active block. At any moment
/// all other clusters are completely idle, so a range-partitioned sharded
/// run skips `(clusters − 1)/clusters` of all per-shard rounds. The tag
/// records the active cluster.
pub fn rotating_flash(
    n: u32,
    d: u32,
    clusters: u32,
    episode_len: u64,
    per_round: u32,
    rounds: u64,
    seed: u64,
) -> Instance {
    assert!(
        clusters >= 1 && n >= 2 * clusters,
        "need 2 disks per cluster"
    );
    assert!(episode_len >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = TraceBuilder::new(d);
    for t in 0..rounds {
        let c = (t / episode_len) % u64::from(clusters);
        let lo = (n as u64 * c / u64::from(clusters)) as u32;
        let hi = (n as u64 * (c + 1) / u64::from(clusters)) as u32;
        let width = hi - lo;
        for _ in 0..per_round {
            let a = lo + rng.gen_range(0..width);
            let mut bb = lo + rng.gen_range(0..width - 1);
            if bb >= a {
                bb += 1;
            }
            b.push_full(
                Round(t),
                Alternatives::two(a.into(), bb.into()),
                d,
                c as u32,
                Hint::default(),
            );
        }
    }
    Instance::new(n, d, b.build())
}

/// Single-alternative uniform arrivals (Observation 3.1's setting).
pub fn single_alternative(n: u32, d: u32, per_round: u32, rounds: u64, seed: u64) -> Instance {
    assert!(n >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = TraceBuilder::new(d);
    for t in 0..rounds {
        for _ in 0..per_round {
            let only = rng.gen_range(0..n);
            b.push_single(Round(t), only);
        }
    }
    Instance::new(n, d, b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_reproducible_and_valid() {
        let a = uniform_two_choice(8, 3, 5, 20, 42);
        let b = uniform_two_choice(8, 3, 5, 20, 42);
        assert_eq!(a, b);
        assert_eq!(a.total_requests(), 100);
        let c = uniform_two_choice(8, 3, 5, 20, 43);
        assert_ne!(a, c, "different seeds give different traces");
        for r in a.trace.requests() {
            let alts = r.alternatives.as_slice();
            assert_eq!(alts.len(), 2);
            assert_ne!(alts[0], alts[1]);
            assert!(alts.iter().all(|s| s.0 < 8));
        }
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let inst = zipf_replicated(8, 2, 50, 1.2, 10, 100, 7);
        assert_eq!(inst.total_requests(), 1000);
        // Item 0 (rank 1) must be requested far more often than item 49.
        let count = |item: u32| {
            inst.trace
                .requests()
                .iter()
                .filter(|r| r.tag == item)
                .count()
        };
        assert!(
            count(0) > 5 * count(49).max(1),
            "{} vs {}",
            count(0),
            count(49)
        );
        // All requests of one item share the same pair.
        let first: Vec<_> = inst
            .trace
            .requests()
            .iter()
            .filter(|r| r.tag == 0)
            .map(|r| r.alternatives.clone())
            .collect();
        assert!(first.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn zipf_alpha_zero_is_uniform_ish() {
        let inst = zipf_replicated(4, 2, 10, 0.0, 20, 50, 3);
        let counts: Vec<usize> = (0..10)
            .map(|i| inst.trace.requests().iter().filter(|r| r.tag == i).count())
            .collect();
        let (min, max) = (
            counts.iter().min().copied().unwrap(),
            counts.iter().max().copied().unwrap(),
        );
        assert!(
            max < 3 * min.max(1),
            "α=0 should be roughly even: {counts:?}"
        );
    }

    #[test]
    fn flash_crowd_bursts_on_hot_pair() {
        let inst = flash_crowd(6, 2, 2, 10, 5, 3, 15, 9);
        let burst: Vec<_> = inst
            .trace
            .requests()
            .iter()
            .filter(|r| r.tag == 1)
            .collect();
        assert_eq!(burst.len(), 30);
        for r in &burst {
            assert!(r.arrival.get() >= 5 && r.arrival.get() < 8);
            assert!(r.alternatives.contains(0u32.into()));
            assert!(r.alternatives.contains(1u32.into()));
        }
        assert_eq!(inst.total_requests(), 2 * 15 + 30);
    }

    #[test]
    fn c_choice_gives_distinct_alternatives() {
        for c in [1u32, 2, 3, 4] {
            let inst = c_choice(6, 3, c, 4, 10, 5);
            assert_eq!(inst.total_requests(), 40);
            for r in inst.trace.requests() {
                assert_eq!(r.alternatives.len(), c as usize);
                let mut alts: Vec<_> = r.alternatives.as_slice().to_vec();
                alts.sort();
                alts.dedup();
                assert_eq!(alts.len(), c as usize, "alternatives must be distinct");
            }
        }
    }

    #[test]
    fn c_choice_is_reproducible() {
        assert_eq!(c_choice(5, 2, 3, 3, 8, 9), c_choice(5, 2, 3, 3, 8, 9));
    }

    #[test]
    fn mixed_deadlines_stay_within_dmax() {
        let inst = mixed_deadlines(5, 4, 6, 15, 13);
        assert_eq!(inst.total_requests(), 90);
        let mut seen = std::collections::HashSet::new();
        for r in inst.trace.requests() {
            assert!(r.deadline >= 1 && r.deadline <= 4);
            assert_eq!(r.tag, r.deadline);
            seen.insert(r.deadline);
        }
        assert!(seen.len() >= 3, "deadlines should actually vary: {seen:?}");
    }

    #[test]
    fn clustered_keeps_choices_inside_one_cluster() {
        let inst = clustered_two_choice(12, 3, 3, 5, 20, 17);
        assert_eq!(inst.total_requests(), 100);
        // Rebuild each cluster's member set from the tags; alternatives of
        // requests with the same tag must never mix across sets.
        let mut members = vec![std::collections::BTreeSet::new(); 3];
        for r in inst.trace.requests() {
            for alt in r.alternatives.as_slice() {
                members[r.tag as usize].insert(alt.0);
            }
        }
        for a in 0..3 {
            for b in (a + 1)..3 {
                assert!(
                    members[a].is_disjoint(&members[b]),
                    "clusters {a} and {b} share disks"
                );
            }
        }
        // The placement is scrambled: at least one cluster is not a
        // contiguous id range.
        let contiguous = members
            .iter()
            .filter(|m| {
                let (lo, hi) = (m.first().copied(), m.last().copied());
                matches!((lo, hi), (Some(lo), Some(hi)) if (hi - lo + 1) as usize == m.len())
            })
            .count();
        assert!(contiguous < 3, "permutation left every cluster contiguous");
        assert_eq!(
            clustered_two_choice(12, 3, 3, 5, 20, 17),
            clustered_two_choice(12, 3, 3, 5, 20, 17)
        );
    }

    #[test]
    fn rotating_flash_activates_one_block_per_episode() {
        let inst = rotating_flash(12, 3, 3, 4, 5, 24, 19);
        assert_eq!(inst.total_requests(), 120);
        for r in inst.trace.requests() {
            let c = (r.arrival.get() / 4) % 3;
            assert_eq!(u64::from(r.tag), c, "tag tracks the active episode");
            let (lo, hi) = (4 * c as u32, 4 * (c as u32 + 1));
            for alt in r.alternatives.as_slice() {
                assert!(
                    alt.0 >= lo && alt.0 < hi,
                    "round {} touched disk {} outside block {lo}..{hi}",
                    r.arrival.get(),
                    alt.0
                );
            }
        }
        assert_eq!(
            rotating_flash(12, 3, 3, 4, 5, 24, 19),
            rotating_flash(12, 3, 3, 4, 5, 24, 19)
        );
    }

    #[test]
    fn single_alternative_requests_have_one_choice() {
        let inst = single_alternative(5, 4, 3, 10, 11);
        assert_eq!(inst.total_requests(), 30);
        for r in inst.trace.requests() {
            assert_eq!(r.alternatives.len(), 1);
        }
    }
}
