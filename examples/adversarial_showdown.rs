//! Replay every lower-bound theorem against its target strategy — and
//! against the *other* strategies, showing which traps transfer and which a
//! smarter rule dodges.
//!
//! ```text
//! cargo run --release --example adversarial_showdown [phases]
//! ```

use reqsched::adversary::{thm21, thm22, thm23, thm24, thm25, Scenario};
use reqsched::core::{StrategyKind, TieBreak};
use reqsched::sim::{par_run, Job};
use std::sync::Arc;

fn main() {
    let phases: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    let scenarios: Vec<(Scenario, StrategyKind)> = vec![
        (thm21::scenario(6, phases), StrategyKind::AFix),
        (thm22::scenario(5, 1, 3), StrategyKind::ACurrent),
        (thm23::scenario(6, phases), StrategyKind::AFixBalance),
        (thm24::scenario(6, phases), StrategyKind::AEager),
        (thm25::scenario(3, 8, 8), StrategyKind::ABalance),
    ];

    for (scenario, target) in scenarios {
        let inst = Arc::new(scenario.instance.clone());
        println!(
            "\n== {} -> targets {} (paper bound {:.4}) ==",
            scenario.name,
            target.name(),
            scenario.predicted_ratio
        );
        let jobs: Vec<Job> = StrategyKind::GLOBAL
            .iter()
            .map(|&k| Job::new(k.name(), Arc::clone(&inst), k, TieBreak::HintGuided))
            .collect();
        for r in par_run(&jobs) {
            let marker = if r.stats.strategy == target.name() {
                "  <- target"
            } else {
                ""
            };
            println!(
                "  {:<14} ratio {:.4}  ({}/{} served){}",
                r.stats.strategy, r.ratio, r.stats.served, r.stats.opt, marker
            );
        }
    }

    println!();
    println!("Each construction pins its target near the paper's bound, while");
    println!("strategies with more freedom (rescheduling, balancing) often");
    println!("escape traps designed for weaker rules.");
}
