//! Local versus global: what the restriction to a constant number of
//! communication rounds costs.
//!
//! Runs `A_local_fix` (2 communication rounds), `A_local_eager` (≤ 9) and
//! the global `A_balance` on the Theorem 3.7 trap and on random traffic,
//! reporting served counts, ratios and communication expenditure.
//!
//! ```text
//! cargo run --release --example local_vs_global
//! ```

use reqsched::adversary::thm37;
use reqsched::core::{StrategyKind, TieBreak};
use reqsched::model::Instance;
use reqsched::sim::{run_fixed, AnyStrategy};
use reqsched::workloads;

fn report(label: &str, inst: &Instance) {
    println!(
        "\n== {label}: n={}, d={}, {} requests ==",
        inst.n_resources,
        inst.d,
        inst.total_requests()
    );
    println!(
        "{:<14} {:>7} {:>8} {:>12} {:>12}",
        "strategy", "served", "ratio", "comm rounds", "messages"
    );
    for strat in [
        AnyStrategy::LocalFix,
        AnyStrategy::LocalEager,
        AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit),
    ] {
        let mut s = strat.build(inst.n_resources, inst.d);
        let stats = run_fixed(s.as_mut(), inst);
        println!(
            "{:<14} {:>7} {:>8.4} {:>12} {:>12}",
            stats.strategy,
            stats.served,
            stats.ratio(),
            stats.comm_rounds,
            stats.messages
        );
    }
}

fn main() {
    let trap = thm37::scenario(6, 8);
    report("Theorem 3.7 trap", &trap.instance);

    let uniform = workloads::uniform_two_choice(10, 4, 14, 200, 5);
    report("uniform two-choice", &uniform);

    let crowd = workloads::flash_crowd(10, 4, 6, 24, 60, 30, 200, 6);
    report("flash crowd", &crowd);

    println!();
    println!("A_local_fix pays ratio 2 on its trap with minimal messaging;");
    println!("A_local_eager's rival-exchange recovers most of the gap at a");
    println!("constant-factor communication cost; the global strategy shows");
    println!("what unlimited information is worth.");
}
