//! Quickstart: build a small workload, run two strategies, compare against
//! the exact offline optimum.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use reqsched::core::{build_strategy, StrategyKind, TieBreak};
use reqsched::model::{Instance, TraceBuilder};
use reqsched::offline::optimal_count;
use reqsched::sim::run_fixed;

fn main() {
    // A data server with 4 disks; every request must be served within
    // d = 3 rounds and names the two disks holding its item's replicas.
    let n = 4;
    let d = 3;

    // A hot item: 2d identical requests for the replica pair (S0, S1) —
    // the paper's block(2, d) — plus background traffic on (S2, S3).
    let mut b = TraceBuilder::new(d);
    b.block2(0u64, 0u32, 1u32, 0);
    b.push(0u64, 2u32, 3u32);
    b.push(1u64, 2u32, 3u32);
    let inst = Instance::new(n, d, b.build());

    println!(
        "instance: n = {}, d = {}, {} requests, OPT = {}",
        inst.n_resources,
        inst.d,
        inst.total_requests(),
        optimal_count(&inst)
    );

    for kind in [
        StrategyKind::Edf {
            cancel_sibling: false,
        },
        StrategyKind::ABalance,
    ] {
        let mut strategy = build_strategy(kind, n, d, TieBreak::FirstFit);
        let stats = run_fixed(strategy.as_mut(), &inst);
        println!(
            "{:<10} served {:>2}/{:<2}  expired {}  ratio {:.3}",
            stats.strategy,
            stats.served,
            stats.injected,
            stats.expired,
            stats.ratio()
        );
    }

    println!();
    println!("Independent-copy EDF burns one disk per round on a duplicate");
    println!("copy of the hot item (Observation 3.2's factor 2); the");
    println!("matching-based A_balance serves every request.");
}
