//! Visualize how different strategies place the *same* requests on the
//! resource × round grid (letters = request tags, '·' = idle slot).
//!
//! ```text
//! cargo run --example schedule_timeline
//! ```

use reqsched::adversary::thm21;
use reqsched::core::{StrategyKind, TieBreak};
use reqsched::sim::{run_fixed, AnyStrategy};
use reqsched::stats::render_timeline;

fn main() {
    // Theorem 2.1's trap (2 phases): tags = injection wave.
    let scenario = thm21::scenario(4, 2);
    let inst = &scenario.instance;
    let tags: Vec<u32> = inst.trace.requests().iter().map(|r| r.tag).collect();
    let horizon = inst.trace.service_horizon().get();

    println!(
        "{} — {} requests, OPT = {}\n",
        scenario.name,
        inst.total_requests(),
        scenario.opt_hint.unwrap()
    );

    for strat in [
        AnyStrategy::Global(StrategyKind::AFix, TieBreak::HintGuided),
        AnyStrategy::Global(StrategyKind::AEager, TieBreak::HintGuided),
    ] {
        let mut s = strat.build(inst.n_resources, inst.d);
        let stats = run_fixed(s.as_mut(), inst);
        println!(
            "{} — served {}/{} (ratio {:.3})",
            stats.strategy,
            stats.served,
            stats.injected,
            stats.ratio()
        );
        println!(
            "{}",
            render_timeline(inst.n_resources, horizon, &stats.assignment, &tags, true)
        );
    }

    println!("Letters are injection waves (a = initial block, b/c = phase");
    println!("blocks; hinted requests carry the wave tag of their phase).");
    println!("A_fix strands most of each phase's block; A_eager reshuffles");
    println!("its parked requests onto the private resources and serves all.");
}
