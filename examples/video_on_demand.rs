//! The paper's motivating scenario: a video-on-demand data server with
//! Zipf-popular content replicated on two disks each, hit by a flash crowd.
//!
//! Compares every strategy on (a) skewed steady-state traffic and (b) a
//! flash crowd where one hot title suddenly dominates arrivals — exactly the
//! "high correlation among requested data items" the introduction warns
//! about as the reason for adversarial (rather than stochastic) analysis.
//!
//! ```text
//! cargo run --release --example video_on_demand
//! ```

use reqsched::core::{StrategyKind, TieBreak};
use reqsched::sim::{par_run, AnyStrategy, Job};
use reqsched::workloads;
use std::sync::Arc;

fn main() {
    let n = 12; // disks
    let d = 4; // rounds until a frame request is useless

    let steady = Arc::new(workloads::zipf_replicated(n, d, 200, 1.1, 14, 300, 7));
    let crowd = Arc::new(workloads::flash_crowd(n, d, 8, 30, 100, 40, 300, 8));

    let strategies: Vec<AnyStrategy> = StrategyKind::GLOBAL
        .iter()
        .map(|&k| AnyStrategy::Global(k, TieBreak::FirstFit))
        .chain([
            AnyStrategy::Global(
                StrategyKind::Edf {
                    cancel_sibling: true,
                },
                TieBreak::FirstFit,
            ),
            AnyStrategy::LocalFix,
            AnyStrategy::LocalEager,
        ])
        .collect();

    for (label, inst) in [("steady Zipf(1.1)", &steady), ("flash crowd", &crowd)] {
        println!(
            "\n== {label}: n={n} disks, d={d}, {} requests, horizon {} rounds ==",
            inst.total_requests(),
            inst.horizon()
        );
        let jobs: Vec<Job> = strategies
            .iter()
            .map(|&s| Job::any(s.name(), Arc::clone(inst), s))
            .collect();
        let mut records = par_run(&jobs);
        records.sort_by(|a, b| a.ratio.partial_cmp(&b.ratio).unwrap());
        println!(
            "{:<14} {:>7} {:>7} {:>8} {:>8}",
            "strategy", "served", "lost", "goodput", "ratio"
        );
        for r in records {
            println!(
                "{:<14} {:>7} {:>7} {:>7.1}% {:>8.4}",
                r.stats.strategy,
                r.stats.served,
                r.stats.expired,
                100.0 * r.stats.goodput(),
                r.ratio
            );
        }
    }

    println!();
    println!("Under the flash crowd the hot pair saturates: strategies that");
    println!("balance and reschedule (A_balance, A_eager) track OPT closely,");
    println!("while no-reschedule and duplicate-copy strategies shed load.");
}
