#!/usr/bin/env bash
# Smoke-test the performance path end to end:
#   0. static analysis twice: the offline --no-tools AST pass first
#      (string + AST rules + stale-waiver wall, sub-second, fails fast),
#      then the full analyze with the fmt/clippy/doc walls, writing the
#      JSON and SARIF reports,
#   1. release build of the whole workspace,
#   2. the full test suite,
#   3. a short Table-1 sweep (exercises the shared OPT cache),
#   4. the hot-path bench in quick mode (regenerates BENCH_PR1.json and
#      asserts the >= 5x horizon-solve reduction),
#   5. the streaming-OPT bench in quick mode (regenerates BENCH_PR2.json,
#      asserts >= 5x incremental-vs-full speedup and exact per-prefix
#      parity), then checks the report carries the parity and
#      solve_reduction fields,
#   6. the delta-window bench in quick mode (regenerates BENCH_PR3.json,
#      asserts exact fresh-vs-delta schedule parity and a >= 2x per-round
#      strategy speedup on every workload), then checks the report,
#   7. the word-core bench in quick mode (regenerates BENCH_PR6.json,
#      asserts the BENCH_PR3 battery re-holds the >= 2x bar on the
#      SoA-arena + bitset core and that the EDF bucket ring replays the
#      heap baseline bit-for-bit), then checks the report,
#   8. the sharded-round bench in quick mode (regenerates BENCH_PR7.json,
#      asserts per-round sharded-vs-unsharded schedule parity on every
#      (workload, shard count) cell and a >= 1.5x S=4 speedup on the
#      large n >= 100k workload), then checks the report,
#   9. the parallel-OPT bench in quick mode (regenerates BENCH_PR8.json,
#      asserts whole-RunStats parity — every opt_prefix entry — between
#      the pipelined ALG||OPT paired runner and the serial paired
#      baseline on every cell, and a >= 2x S=4 speedup on the n >= 100k
#      gate workload), then checks the report,
#  10. the chaos harness in quick mode with the invariant auditor armed
#      and --shards 4 --parallel-opt (matching-based global strategies
#      run through the sharded engine with the pipelined sharded optimum,
#      each such cell self-checked bit-identical against its serial path;
#      EDF/local cells stay unsharded; sweeps strategies x fault levels
#      under seeded fault plans, asserts byte-identical determinism
#      across two sweeps, audits every round boundary), then checks
#      results/chaos.csv and BENCH_PR5.json.
#
# Every bench honors the single BENCH_QUICK=1 switch (exported below);
# the historic per-bench variables (HOT_PATH_QUICK, STREAMING_OPT_QUICK,
# DELTA_WINDOW_QUICK, CHAOS_QUICK, WORD_CORE_QUICK) remain as aliases.
#
# Usage: scripts/bench_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Offline dev containers vendor stub crates in /tmp/vendor and have no
# registry access; route cargo at the directory source there. Everywhere
# else, plain cargo.
CARGO=(cargo)
if [ -d /tmp/vendor ] && ! cargo metadata -q --format-version 1 >/dev/null 2>&1; then
    CARGO=(cargo
        --config 'source.crates-io.replace-with="local-stubs"'
        --config 'source.local-stubs.directory="/tmp/vendor"')
fi

echo "== static analysis, offline AST pass (cargo xtask analyze --no-tools) =="
# A dirty analyze fails the smoke before anything expensive runs. The
# --no-tools pass is the offline, sub-second subset: the string rules,
# the five AST rules (rayon capture audit, float-order-in-par,
# alias-evading-hasher, lossy-id-cast, panic-path-index) and the
# stale-waiver wall, with zero parse fallbacks expected on the real tree.
"${CARGO[@]}" run --quiet --package xtask -- analyze --no-tools

echo "== static analysis, full (cargo xtask analyze) =="
# Then the full wall: same source pass plus the fmt/clippy/doc tool
# gates (which self-skip where the toolchain lacks them), emitting the
# JSON and SARIF reports CI uploads.
"${CARGO[@]}" run --quiet --package xtask -- analyze \
    --json analyze-report.json --sarif analyze-report.sarif

echo "== release build =="
"${CARGO[@]}" build --release --workspace

echo "== tests =="
"${CARGO[@]}" test -q --workspace

echo "== short table1 sweep =="
"${CARGO[@]}" run --release -p reqsched-bench --bin table1 -- 4

# One switch for every bench below.
export BENCH_QUICK=1

echo "== hot-path bench (quick) =="
"${CARGO[@]}" bench -p reqsched-bench --bench hot_path

echo "== streaming-OPT bench (quick) =="
"${CARGO[@]}" bench -p reqsched-bench --bench streaming_opt

echo "== BENCH_PR2.json sanity =="
grep -q '"parity": true' BENCH_PR2.json || {
    echo "BENCH_PR2.json: missing incremental parity" >&2
    exit 1
}
grep -q '"solve_reduction":' BENCH_PR2.json || {
    echo "BENCH_PR2.json: missing solve_reduction field" >&2
    exit 1
}

echo "== delta-window bench (quick) =="
# The bench itself asserts per-round schedule parity and the >= 2x
# worst-case speedup; the greps below guard the report format.
"${CARGO[@]}" bench -p reqsched-bench --bench delta_window

echo "== BENCH_PR3.json sanity =="
grep -q '"parity": true' BENCH_PR3.json || {
    echo "BENCH_PR3.json: missing fresh-vs-delta parity" >&2
    exit 1
}
python3 - <<'EOF' || exit 1
import json, sys
r = json.load(open("BENCH_PR3.json"))
bad = [w["name"] for w in r["workloads"] if w["round_speedup"] < 2.0]
if r["round_speedup"] < 2.0 or bad:
    sys.exit(f"BENCH_PR3.json: round_speedup below 2x: {bad or r['round_speedup']}")
EOF

echo "== word-core bench (quick) =="
# The bench itself asserts exact fresh-vs-delta parity on the SoA/bitset
# core and bit-for-bit ring-vs-heap EDF parity; the checks below guard
# the report format.
"${CARGO[@]}" bench -p reqsched-bench --bench word_core

echo "== BENCH_PR6.json sanity =="
grep -q '"parity": true' BENCH_PR6.json || {
    echo "BENCH_PR6.json: missing word-core parity" >&2
    exit 1
}
python3 - <<'EOF' || exit 1
import json, sys
r = json.load(open("BENCH_PR6.json"))
bad = [w["name"] for w in r["workloads"] if w["round_speedup"] < 2.0]
if r["round_speedup"] < 2.0 or bad:
    sys.exit(f"BENCH_PR6.json: round_speedup below 2x: {bad or r['round_speedup']}")
for w in r["workloads"] + r["edf_ring"]:
    for key in ("name", "baseline_ms", "measured_ms", "speedup"):
        if key not in w:
            sys.exit(f"BENCH_PR6.json: workload entry missing {key!r}")
EOF

echo "== sharded-round bench (quick) =="
# The bench itself asserts sharded-vs-unsharded RunStats parity on every
# (workload, S) cell and gates S=4 >= 1.5x over S=1 on the largest
# workload; the checks below guard the report format.
"${CARGO[@]}" bench -p reqsched-bench --bench sharded_round

echo "== BENCH_PR7.json sanity =="
grep -q '"parity": true' BENCH_PR7.json || {
    echo "BENCH_PR7.json: missing sharded-vs-unsharded parity" >&2
    exit 1
}
python3 - <<'EOF' || exit 1
import json, sys
r = json.load(open("BENCH_PR7.json"))
if r["s4_speedup"] < 1.5:
    sys.exit(f"BENCH_PR7.json: gate s4_speedup below 1.5x: {r['s4_speedup']}")
for w in r["workloads"]:
    for s in w["shards"]:
        for key in ("shards", "ms", "speedup", "straddler_fraction"):
            if key not in s:
                sys.exit(f"BENCH_PR7.json: shard row of {w['name']!r} missing {key!r}")
EOF

echo "== parallel-OPT bench (quick) =="
# The bench itself asserts whole-RunStats equality (services, opt and the
# complete per-round opt_prefix) between the pipelined parallel pair and
# the serial paired baseline before any timing counts, gates S=4 >= 2x on
# the n >= 100k workload, and pins the ShardMap::auto fallback to one
# shard at n = 10k; the checks below guard the report format.
"${CARGO[@]}" bench -p reqsched-bench --bench parallel_opt

echo "== BENCH_PR8.json sanity =="
grep -q '"parity": true' BENCH_PR8.json || {
    echo "BENCH_PR8.json: missing paired-run parity" >&2
    exit 1
}
python3 - <<'EOF' || exit 1
import json, sys
r = json.load(open("BENCH_PR8.json"))
if r["paired_s4_speedup"] < 2.0:
    sys.exit(f"BENCH_PR8.json: gate paired_s4_speedup below 2x: {r['paired_s4_speedup']}")
for w in r["workloads"]:
    for s in w["shards"]:
        for key in ("shards", "ms", "speedup", "round_latency_us"):
            if key not in s:
                sys.exit(f"BENCH_PR8.json: shard row of {w['name']!r} missing {key!r}")
for row in r["opt_only"]:
    for key in ("workload", "serial_ms", "sharded_s4_ms", "speedup"):
        if key not in row:
            sys.exit(f"BENCH_PR8.json: opt_only row missing {key!r}")
if r["auto_shards"]["effective"] != 1:
    sys.exit(f"BENCH_PR8.json: auto_shards must fall back to 1 at n=10k, "
             f"got {r['auto_shards']['effective']}")
EOF

echo "== chaos harness (quick, audit-armed, --shards 4 --parallel-opt) =="
# The binary itself asserts determinism (two full sweeps must render
# byte-identical CSV); --features audit replays the invariant auditor at
# every round boundary of every cell, including the no-service-on-crashed-
# slot check and delta-vs-fresh matching parity. --shards 4 routes the
# matching-based global strategies through the sharded round engine (the
# EDF and local cells keep the unsharded path in the same sweep), so the
# auditor also walks the sharded engine's round boundaries. --parallel-opt
# additionally computes every eligible cell's fault-aware optimum on the
# pipelined sharded engine and asserts it bit-identical to the serial path
# before the row is emitted.
"${CARGO[@]}" run --release -p reqsched-bench --features audit --bin chaos -- --shards 4 --parallel-opt

echo "== chaos artifacts sanity =="
grep -q '"deterministic": true' BENCH_PR5.json || {
    echo "BENCH_PR5.json: missing determinism assertion" >&2
    exit 1
}
head -1 results/chaos.csv | grep -q '^strategy,level,crash_prob,' || {
    echo "results/chaos.csv: unexpected header" >&2
    exit 1
}
python3 - <<'EOF' || exit 1
import json, sys
r = json.load(open("BENCH_PR5.json"))
if r["strategies"] < 3 or r["fault_levels"] < 3:
    sys.exit(f"BENCH_PR5.json: need >= 3 strategies x 3 fault rates, "
             f"got {r['strategies']} x {r['fault_levels']}")
if any(c["goodput"] > 1.0 + 1e-9 or c["ratio"] < 1.0 - 1e-9 for c in r["cells"]):
    sys.exit("BENCH_PR5.json: a cell beats OPT or exceeds unit goodput")
EOF

echo "bench smoke OK"
