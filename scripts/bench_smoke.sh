#!/usr/bin/env bash
# Smoke-test the performance path end to end:
#   1. release build of the whole workspace,
#   2. the full test suite,
#   3. a short Table-1 sweep (exercises the shared OPT cache),
#   4. the hot-path bench in quick mode (regenerates BENCH_PR1.json and
#      asserts the >= 5x horizon-solve reduction).
#
# Usage: scripts/bench_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== short table1 sweep =="
cargo run --release -p reqsched-bench --bin table1 -- 4

echo "== hot-path bench (quick) =="
HOT_PATH_QUICK=1 cargo bench -p reqsched-bench --bench hot_path

echo "bench smoke OK"
