#!/usr/bin/env bash
# Flamegraph hook for the word-parallel core hot path.
#
# Profiles one bench target (default: word_core, the BENCH_PR6 gate) and
# drops a flamegraph SVG under results/. Tooling is probed in order:
#
#   1. cargo-flamegraph (`cargo flamegraph`), if installed;
#   2. plain `perf record` + the flamegraph scripts if both are present
#      (stackcollapse-perf.pl / flamegraph.pl on PATH);
#   3. otherwise: skip gracefully with exit 0 — offline containers and CI
#      runners without perf privileges must not fail on a missing profiler.
#
# Usage: scripts/profile.sh [bench-name]   (e.g. word_core, delta_window)
# The bench runs in quick mode (BENCH_QUICK=1) so a profile costs seconds.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-word_core}"
export BENCH_QUICK=1
mkdir -p results

# Offline dev containers vendor stub crates in /tmp/vendor and have no
# registry access; route cargo at the directory source there. Everywhere
# else, plain cargo.
CARGO=(cargo)
if [ -d /tmp/vendor ] && ! cargo metadata -q --format-version 1 >/dev/null 2>&1; then
    CARGO=(cargo
        --config 'source.crates-io.replace-with="local-stubs"'
        --config 'source.local-stubs.directory="/tmp/vendor"')
fi

if "${CARGO[@]}" flamegraph --version >/dev/null 2>&1; then
    echo "== cargo-flamegraph: bench $BENCH =="
    "${CARGO[@]}" flamegraph --bench "$BENCH" -o "results/flamegraph-$BENCH.svg"
    echo "wrote results/flamegraph-$BENCH.svg"
    exit 0
fi

if command -v perf >/dev/null 2>&1; then
    echo "== perf fallback: bench $BENCH =="
    "${CARGO[@]}" bench -p reqsched-bench --bench "$BENCH" --no-run
    # Resolve the freshly built bench binary (newest matching artifact).
    BIN=$(ls -t target/release/deps/"$BENCH"-* 2>/dev/null \
        | grep -v '\.d$' | head -1 || true)
    if [ -z "$BIN" ]; then
        echo "profile: no built bench binary for $BENCH; skipping" >&2
        exit 0
    fi
    if ! perf record -g -o results/perf-"$BENCH".data -- "$BIN" \
        >/dev/null 2>results/perf-"$BENCH".log; then
        echo "profile: perf record unavailable (privileges?); skipping" >&2
        exit 0
    fi
    if command -v stackcollapse-perf.pl >/dev/null 2>&1 \
        && command -v flamegraph.pl >/dev/null 2>&1; then
        perf script -i results/perf-"$BENCH".data \
            | stackcollapse-perf.pl \
            | flamegraph.pl > "results/flamegraph-$BENCH.svg"
        echo "wrote results/flamegraph-$BENCH.svg"
    else
        echo "profile: flamegraph scripts not on PATH; raw profile kept at" \
             "results/perf-$BENCH.data (render with perf report)"
    fi
    exit 0
fi

echo "profile: neither cargo-flamegraph nor perf available; skipping (ok offline)"
exit 0
