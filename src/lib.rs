//! # reqsched
//!
//! A complete, executable reproduction of **“Simple Competitive Request
//! Scheduling Strategies”** (Petra Berenbrink, Marco Riedel, Christian
//! Scheideler — SPAA 1999): online scheduling of real-time requests in
//! distributed data servers, where every request names two alternative
//! resources (the two replicas of its data item) and must be served within
//! `d` rounds of arrival.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`model`] — requests, traces, instances, the `block(a,d)` primitive;
//! * [`matching`] — the bipartite matching engine (Hopcroft–Karp, Kuhn
//!   augmentation, lexicographic slot saturation, alternating-path
//!   analysis);
//! * [`core`] — the global strategies: EDF, `A_fix`, `A_current`,
//!   `A_fix_balance`, `A_eager`, `A_balance`;
//! * [`local`] — the distributed strategies `A_local_fix` (2 communication
//!   rounds) and `A_local_eager` (≤ 9) over a faithful synchronous
//!   message-passing substrate;
//! * [`offline`] — exact offline optima (the competitive-ratio baseline);
//! * [`adversary`] — one executable lower-bound construction per theorem;
//! * [`workloads`] — randomized data-server workloads (two-choice arrivals,
//!   Zipf replica popularity, flash crowds);
//! * [`sim`] — the validating simulation driver and Rayon-parallel sweeps;
//! * [`stats`] — aggregation and table/CSV rendering.
//!
//! ## Quickstart
//!
//! ```
//! use reqsched::model::{Instance, TraceBuilder};
//! use reqsched::core::{build_strategy, StrategyKind, TieBreak};
//! use reqsched::sim::run_fixed;
//!
//! // Four requests, two resources, deadline 2.
//! let mut b = TraceBuilder::new(2);
//! for _ in 0..4 {
//!     b.push(0u64, 0u32, 1u32);
//! }
//! let inst = Instance::new(2, 2, b.build());
//!
//! let mut strategy = build_strategy(StrategyKind::ABalance, 2, 2, TieBreak::FirstFit);
//! let stats = run_fixed(strategy.as_mut(), &inst);
//! assert_eq!(stats.served, 4);
//! assert_eq!(stats.opt, 4);
//! assert!((stats.ratio() - 1.0).abs() < 1e-9);
//! ```

pub use reqsched_adversary as adversary;
pub use reqsched_core as core;
pub use reqsched_local as local;
pub use reqsched_matching as matching;
pub use reqsched_model as model;
pub use reqsched_offline as offline;
pub use reqsched_sim as sim;
pub use reqsched_stats as stats;
pub use reqsched_workloads as workloads;
