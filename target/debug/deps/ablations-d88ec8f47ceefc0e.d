/root/repo/target/debug/deps/ablations-d88ec8f47ceefc0e.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-d88ec8f47ceefc0e: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
