/root/repo/target/debug/deps/c_alternatives-25e321ac43e89e08.d: tests/c_alternatives.rs

/root/repo/target/debug/deps/c_alternatives-25e321ac43e89e08: tests/c_alternatives.rs

tests/c_alternatives.rs:
