/root/repo/target/debug/deps/compliance-8b39e02db5af0c65.d: crates/core/tests/compliance.rs

/root/repo/target/debug/deps/compliance-8b39e02db5af0c65: crates/core/tests/compliance.rs

crates/core/tests/compliance.rs:
