/root/repo/target/debug/deps/crossbeam-bbd1f40143af0088.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-bbd1f40143af0088.rlib: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-bbd1f40143af0088.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
