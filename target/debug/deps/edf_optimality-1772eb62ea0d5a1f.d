/root/repo/target/debug/deps/edf_optimality-1772eb62ea0d5a1f.d: tests/edf_optimality.rs

/root/repo/target/debug/deps/edf_optimality-1772eb62ea0d5a1f: tests/edf_optimality.rs

tests/edf_optimality.rs:
