/root/repo/target/debug/deps/engine_guards-7ed4542efd03b2df.d: tests/engine_guards.rs

/root/repo/target/debug/deps/engine_guards-7ed4542efd03b2df: tests/engine_guards.rs

tests/engine_guards.rs:
