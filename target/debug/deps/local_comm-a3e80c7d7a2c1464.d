/root/repo/target/debug/deps/local_comm-a3e80c7d7a2c1464.d: crates/bench/src/bin/local_comm.rs

/root/repo/target/debug/deps/local_comm-a3e80c7d7a2c1464: crates/bench/src/bin/local_comm.rs

crates/bench/src/bin/local_comm.rs:
