/root/repo/target/debug/deps/local_strategies-95eeee2b6a2c8453.d: tests/local_strategies.rs

/root/repo/target/debug/deps/local_strategies-95eeee2b6a2c8453: tests/local_strategies.rs

tests/local_strategies.rs:
