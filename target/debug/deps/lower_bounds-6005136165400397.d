/root/repo/target/debug/deps/lower_bounds-6005136165400397.d: tests/lower_bounds.rs

/root/repo/target/debug/deps/lower_bounds-6005136165400397: tests/lower_bounds.rs

tests/lower_bounds.rs:
