/root/repo/target/debug/deps/opt_cache_proptests-78b6657207c0474d.d: crates/sim/tests/opt_cache_proptests.rs

/root/repo/target/debug/deps/opt_cache_proptests-78b6657207c0474d: crates/sim/tests/opt_cache_proptests.rs

crates/sim/tests/opt_cache_proptests.rs:
