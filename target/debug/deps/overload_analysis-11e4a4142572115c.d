/root/repo/target/debug/deps/overload_analysis-11e4a4142572115c.d: tests/overload_analysis.rs

/root/repo/target/debug/deps/overload_analysis-11e4a4142572115c: tests/overload_analysis.rs

tests/overload_analysis.rs:
