/root/repo/target/debug/deps/parking_lot-77fad2035309079e.d: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-77fad2035309079e.rlib: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-77fad2035309079e.rmeta: /tmp/vendor/parking_lot/src/lib.rs

/tmp/vendor/parking_lot/src/lib.rs:
