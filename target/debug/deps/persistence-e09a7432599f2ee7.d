/root/repo/target/debug/deps/persistence-e09a7432599f2ee7.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-e09a7432599f2ee7: tests/persistence.rs

tests/persistence.rs:
