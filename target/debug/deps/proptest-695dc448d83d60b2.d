/root/repo/target/debug/deps/proptest-695dc448d83d60b2.d: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-695dc448d83d60b2.rlib: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-695dc448d83d60b2.rmeta: /tmp/vendor/proptest/src/lib.rs

/tmp/vendor/proptest/src/lib.rs:
