/root/repo/target/debug/deps/proptest_invariants-fd5e164bb8d988a3.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-fd5e164bb8d988a3: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
