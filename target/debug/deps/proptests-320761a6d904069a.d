/root/repo/target/debug/deps/proptests-320761a6d904069a.d: crates/model/tests/proptests.rs

/root/repo/target/debug/deps/proptests-320761a6d904069a: crates/model/tests/proptests.rs

crates/model/tests/proptests.rs:
