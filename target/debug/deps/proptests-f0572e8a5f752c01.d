/root/repo/target/debug/deps/proptests-f0572e8a5f752c01.d: crates/matching/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f0572e8a5f752c01: crates/matching/tests/proptests.rs

crates/matching/tests/proptests.rs:
