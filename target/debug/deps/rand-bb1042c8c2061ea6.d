/root/repo/target/debug/deps/rand-bb1042c8c2061ea6.d: /tmp/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-bb1042c8c2061ea6.rlib: /tmp/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-bb1042c8c2061ea6.rmeta: /tmp/vendor/rand/src/lib.rs

/tmp/vendor/rand/src/lib.rs:
