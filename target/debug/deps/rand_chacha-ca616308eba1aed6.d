/root/repo/target/debug/deps/rand_chacha-ca616308eba1aed6.d: /tmp/vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-ca616308eba1aed6.rlib: /tmp/vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-ca616308eba1aed6.rmeta: /tmp/vendor/rand_chacha/src/lib.rs

/tmp/vendor/rand_chacha/src/lib.rs:
