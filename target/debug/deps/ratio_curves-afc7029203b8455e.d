/root/repo/target/debug/deps/ratio_curves-afc7029203b8455e.d: crates/bench/src/bin/ratio_curves.rs

/root/repo/target/debug/deps/ratio_curves-afc7029203b8455e: crates/bench/src/bin/ratio_curves.rs

crates/bench/src/bin/ratio_curves.rs:
