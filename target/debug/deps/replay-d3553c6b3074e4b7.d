/root/repo/target/debug/deps/replay-d3553c6b3074e4b7.d: crates/bench/src/bin/replay.rs

/root/repo/target/debug/deps/replay-d3553c6b3074e4b7: crates/bench/src/bin/replay.rs

crates/bench/src/bin/replay.rs:
