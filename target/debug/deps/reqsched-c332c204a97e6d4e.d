/root/repo/target/debug/deps/reqsched-c332c204a97e6d4e.d: src/lib.rs

/root/repo/target/debug/deps/libreqsched-c332c204a97e6d4e.rlib: src/lib.rs

/root/repo/target/debug/deps/libreqsched-c332c204a97e6d4e.rmeta: src/lib.rs

src/lib.rs:
