/root/repo/target/debug/deps/reqsched-c5e13e72bbdb6da1.d: src/lib.rs

/root/repo/target/debug/deps/reqsched-c5e13e72bbdb6da1: src/lib.rs

src/lib.rs:
