/root/repo/target/debug/deps/reqsched_adversary-35a040837a3d24e0.d: crates/adversary/src/lib.rs crates/adversary/src/edf_worst.rs crates/adversary/src/thm21.rs crates/adversary/src/thm22.rs crates/adversary/src/thm23.rs crates/adversary/src/thm24.rs crates/adversary/src/thm25.rs crates/adversary/src/thm26.rs crates/adversary/src/thm37.rs

/root/repo/target/debug/deps/reqsched_adversary-35a040837a3d24e0: crates/adversary/src/lib.rs crates/adversary/src/edf_worst.rs crates/adversary/src/thm21.rs crates/adversary/src/thm22.rs crates/adversary/src/thm23.rs crates/adversary/src/thm24.rs crates/adversary/src/thm25.rs crates/adversary/src/thm26.rs crates/adversary/src/thm37.rs

crates/adversary/src/lib.rs:
crates/adversary/src/edf_worst.rs:
crates/adversary/src/thm21.rs:
crates/adversary/src/thm22.rs:
crates/adversary/src/thm23.rs:
crates/adversary/src/thm24.rs:
crates/adversary/src/thm25.rs:
crates/adversary/src/thm26.rs:
crates/adversary/src/thm37.rs:
