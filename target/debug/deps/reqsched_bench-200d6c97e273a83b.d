/root/repo/target/debug/deps/reqsched_bench-200d6c97e273a83b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libreqsched_bench-200d6c97e273a83b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libreqsched_bench-200d6c97e273a83b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
