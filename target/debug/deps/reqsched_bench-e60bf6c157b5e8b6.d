/root/repo/target/debug/deps/reqsched_bench-e60bf6c157b5e8b6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/reqsched_bench-e60bf6c157b5e8b6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
