/root/repo/target/debug/deps/reqsched_core-dcc93904d3b8858e.d: crates/core/src/lib.rs crates/core/src/acurrent.rs crates/core/src/afix.rs crates/core/src/balance.rs crates/core/src/eager.rs crates/core/src/edf.rs crates/core/src/factory.rs crates/core/src/fix_balance.rs crates/core/src/lazy.rs crates/core/src/schedule.rs crates/core/src/tiebreak.rs crates/core/src/window.rs

/root/repo/target/debug/deps/reqsched_core-dcc93904d3b8858e: crates/core/src/lib.rs crates/core/src/acurrent.rs crates/core/src/afix.rs crates/core/src/balance.rs crates/core/src/eager.rs crates/core/src/edf.rs crates/core/src/factory.rs crates/core/src/fix_balance.rs crates/core/src/lazy.rs crates/core/src/schedule.rs crates/core/src/tiebreak.rs crates/core/src/window.rs

crates/core/src/lib.rs:
crates/core/src/acurrent.rs:
crates/core/src/afix.rs:
crates/core/src/balance.rs:
crates/core/src/eager.rs:
crates/core/src/edf.rs:
crates/core/src/factory.rs:
crates/core/src/fix_balance.rs:
crates/core/src/lazy.rs:
crates/core/src/schedule.rs:
crates/core/src/tiebreak.rs:
crates/core/src/window.rs:
