/root/repo/target/debug/deps/reqsched_local-129bf44c2a9e28c7.d: crates/local/src/lib.rs crates/local/src/fabric.rs crates/local/src/local_eager.rs crates/local/src/local_fix.rs

/root/repo/target/debug/deps/libreqsched_local-129bf44c2a9e28c7.rlib: crates/local/src/lib.rs crates/local/src/fabric.rs crates/local/src/local_eager.rs crates/local/src/local_fix.rs

/root/repo/target/debug/deps/libreqsched_local-129bf44c2a9e28c7.rmeta: crates/local/src/lib.rs crates/local/src/fabric.rs crates/local/src/local_eager.rs crates/local/src/local_fix.rs

crates/local/src/lib.rs:
crates/local/src/fabric.rs:
crates/local/src/local_eager.rs:
crates/local/src/local_fix.rs:
