/root/repo/target/debug/deps/reqsched_local-3fd948d66f951740.d: crates/local/src/lib.rs crates/local/src/fabric.rs crates/local/src/local_eager.rs crates/local/src/local_fix.rs

/root/repo/target/debug/deps/reqsched_local-3fd948d66f951740: crates/local/src/lib.rs crates/local/src/fabric.rs crates/local/src/local_eager.rs crates/local/src/local_fix.rs

crates/local/src/lib.rs:
crates/local/src/fabric.rs:
crates/local/src/local_eager.rs:
crates/local/src/local_fix.rs:
