/root/repo/target/debug/deps/reqsched_matching-479caa07e126a10d.d: crates/matching/src/lib.rs crates/matching/src/diff.rs crates/matching/src/graph.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/kuhn.rs crates/matching/src/matching.rs crates/matching/src/saturate.rs crates/matching/src/workspace.rs crates/matching/src/brute.rs

/root/repo/target/debug/deps/reqsched_matching-479caa07e126a10d: crates/matching/src/lib.rs crates/matching/src/diff.rs crates/matching/src/graph.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/kuhn.rs crates/matching/src/matching.rs crates/matching/src/saturate.rs crates/matching/src/workspace.rs crates/matching/src/brute.rs

crates/matching/src/lib.rs:
crates/matching/src/diff.rs:
crates/matching/src/graph.rs:
crates/matching/src/hopcroft_karp.rs:
crates/matching/src/kuhn.rs:
crates/matching/src/matching.rs:
crates/matching/src/saturate.rs:
crates/matching/src/workspace.rs:
crates/matching/src/brute.rs:
