/root/repo/target/debug/deps/reqsched_matching-b5b6586c8ae5f878.d: crates/matching/src/lib.rs crates/matching/src/diff.rs crates/matching/src/graph.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/kuhn.rs crates/matching/src/matching.rs crates/matching/src/saturate.rs crates/matching/src/workspace.rs crates/matching/src/brute.rs

/root/repo/target/debug/deps/libreqsched_matching-b5b6586c8ae5f878.rlib: crates/matching/src/lib.rs crates/matching/src/diff.rs crates/matching/src/graph.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/kuhn.rs crates/matching/src/matching.rs crates/matching/src/saturate.rs crates/matching/src/workspace.rs crates/matching/src/brute.rs

/root/repo/target/debug/deps/libreqsched_matching-b5b6586c8ae5f878.rmeta: crates/matching/src/lib.rs crates/matching/src/diff.rs crates/matching/src/graph.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/kuhn.rs crates/matching/src/matching.rs crates/matching/src/saturate.rs crates/matching/src/workspace.rs crates/matching/src/brute.rs

crates/matching/src/lib.rs:
crates/matching/src/diff.rs:
crates/matching/src/graph.rs:
crates/matching/src/hopcroft_karp.rs:
crates/matching/src/kuhn.rs:
crates/matching/src/matching.rs:
crates/matching/src/saturate.rs:
crates/matching/src/workspace.rs:
crates/matching/src/brute.rs:
