/root/repo/target/debug/deps/reqsched_model-de76031d066afb63.d: crates/model/src/lib.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/request.rs crates/model/src/source.rs crates/model/src/trace.rs

/root/repo/target/debug/deps/libreqsched_model-de76031d066afb63.rlib: crates/model/src/lib.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/request.rs crates/model/src/source.rs crates/model/src/trace.rs

/root/repo/target/debug/deps/libreqsched_model-de76031d066afb63.rmeta: crates/model/src/lib.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/request.rs crates/model/src/source.rs crates/model/src/trace.rs

crates/model/src/lib.rs:
crates/model/src/ids.rs:
crates/model/src/instance.rs:
crates/model/src/request.rs:
crates/model/src/source.rs:
crates/model/src/trace.rs:
