/root/repo/target/debug/deps/reqsched_model-fdeecfc64e3400f6.d: crates/model/src/lib.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/request.rs crates/model/src/source.rs crates/model/src/trace.rs

/root/repo/target/debug/deps/reqsched_model-fdeecfc64e3400f6: crates/model/src/lib.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/request.rs crates/model/src/source.rs crates/model/src/trace.rs

crates/model/src/lib.rs:
crates/model/src/ids.rs:
crates/model/src/instance.rs:
crates/model/src/request.rs:
crates/model/src/source.rs:
crates/model/src/trace.rs:
