/root/repo/target/debug/deps/reqsched_offline-ab9b625bf20b245d.d: crates/offline/src/lib.rs crates/offline/src/analysis.rs

/root/repo/target/debug/deps/libreqsched_offline-ab9b625bf20b245d.rlib: crates/offline/src/lib.rs crates/offline/src/analysis.rs

/root/repo/target/debug/deps/libreqsched_offline-ab9b625bf20b245d.rmeta: crates/offline/src/lib.rs crates/offline/src/analysis.rs

crates/offline/src/lib.rs:
crates/offline/src/analysis.rs:
