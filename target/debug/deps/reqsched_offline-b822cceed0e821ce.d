/root/repo/target/debug/deps/reqsched_offline-b822cceed0e821ce.d: crates/offline/src/lib.rs crates/offline/src/analysis.rs

/root/repo/target/debug/deps/reqsched_offline-b822cceed0e821ce: crates/offline/src/lib.rs crates/offline/src/analysis.rs

crates/offline/src/lib.rs:
crates/offline/src/analysis.rs:
