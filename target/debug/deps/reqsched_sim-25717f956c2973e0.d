/root/repo/target/debug/deps/reqsched_sim-25717f956c2973e0.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/engine.rs crates/sim/src/strategy.rs crates/sim/src/sweep.rs

/root/repo/target/debug/deps/reqsched_sim-25717f956c2973e0: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/engine.rs crates/sim/src/strategy.rs crates/sim/src/sweep.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/engine.rs:
crates/sim/src/strategy.rs:
crates/sim/src/sweep.rs:
