/root/repo/target/debug/deps/reqsched_sim-f5a4797700db4142.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/engine.rs crates/sim/src/strategy.rs crates/sim/src/sweep.rs

/root/repo/target/debug/deps/libreqsched_sim-f5a4797700db4142.rlib: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/engine.rs crates/sim/src/strategy.rs crates/sim/src/sweep.rs

/root/repo/target/debug/deps/libreqsched_sim-f5a4797700db4142.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/engine.rs crates/sim/src/strategy.rs crates/sim/src/sweep.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/engine.rs:
crates/sim/src/strategy.rs:
crates/sim/src/sweep.rs:
