/root/repo/target/debug/deps/reqsched_stats-4d0ddba89509b720.d: crates/stats/src/lib.rs crates/stats/src/summary.rs crates/stats/src/table.rs crates/stats/src/timeline.rs

/root/repo/target/debug/deps/reqsched_stats-4d0ddba89509b720: crates/stats/src/lib.rs crates/stats/src/summary.rs crates/stats/src/table.rs crates/stats/src/timeline.rs

crates/stats/src/lib.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
crates/stats/src/timeline.rs:
