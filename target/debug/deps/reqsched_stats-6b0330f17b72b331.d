/root/repo/target/debug/deps/reqsched_stats-6b0330f17b72b331.d: crates/stats/src/lib.rs crates/stats/src/summary.rs crates/stats/src/table.rs crates/stats/src/timeline.rs

/root/repo/target/debug/deps/libreqsched_stats-6b0330f17b72b331.rlib: crates/stats/src/lib.rs crates/stats/src/summary.rs crates/stats/src/table.rs crates/stats/src/timeline.rs

/root/repo/target/debug/deps/libreqsched_stats-6b0330f17b72b331.rmeta: crates/stats/src/lib.rs crates/stats/src/summary.rs crates/stats/src/table.rs crates/stats/src/timeline.rs

crates/stats/src/lib.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
crates/stats/src/timeline.rs:
