/root/repo/target/debug/deps/reqsched_workloads-b0ddef070b8260ee.d: crates/workloads/src/lib.rs

/root/repo/target/debug/deps/libreqsched_workloads-b0ddef070b8260ee.rlib: crates/workloads/src/lib.rs

/root/repo/target/debug/deps/libreqsched_workloads-b0ddef070b8260ee.rmeta: crates/workloads/src/lib.rs

crates/workloads/src/lib.rs:
