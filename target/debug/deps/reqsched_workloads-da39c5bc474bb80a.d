/root/repo/target/debug/deps/reqsched_workloads-da39c5bc474bb80a.d: crates/workloads/src/lib.rs

/root/repo/target/debug/deps/reqsched_workloads-da39c5bc474bb80a: crates/workloads/src/lib.rs

crates/workloads/src/lib.rs:
