/root/repo/target/debug/deps/serde-d070fd341e4691e9.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d070fd341e4691e9.rlib: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d070fd341e4691e9.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
