/root/repo/target/debug/deps/serde_json-bc89533480ee46a3.d: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-bc89533480ee46a3.rlib: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-bc89533480ee46a3.rmeta: /tmp/vendor/serde_json/src/lib.rs

/tmp/vendor/serde_json/src/lib.rs:
