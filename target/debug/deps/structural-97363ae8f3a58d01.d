/root/repo/target/debug/deps/structural-97363ae8f3a58d01.d: tests/structural.rs

/root/repo/target/debug/deps/structural-97363ae8f3a58d01: tests/structural.rs

tests/structural.rs:
