/root/repo/target/debug/deps/table1-9c9656b57a821670.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-9c9656b57a821670: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
