/root/repo/target/debug/deps/thm26_universal-fbe46d9c32b31658.d: tests/thm26_universal.rs

/root/repo/target/debug/deps/thm26_universal-fbe46d9c32b31658: tests/thm26_universal.rs

tests/thm26_universal.rs:
