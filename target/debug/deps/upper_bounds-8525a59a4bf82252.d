/root/repo/target/debug/deps/upper_bounds-8525a59a4bf82252.d: tests/upper_bounds.rs

/root/repo/target/debug/deps/upper_bounds-8525a59a4bf82252: tests/upper_bounds.rs

tests/upper_bounds.rs:
