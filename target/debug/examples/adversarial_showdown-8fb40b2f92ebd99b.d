/root/repo/target/debug/examples/adversarial_showdown-8fb40b2f92ebd99b.d: examples/adversarial_showdown.rs

/root/repo/target/debug/examples/adversarial_showdown-8fb40b2f92ebd99b: examples/adversarial_showdown.rs

examples/adversarial_showdown.rs:
