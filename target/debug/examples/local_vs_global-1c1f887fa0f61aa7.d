/root/repo/target/debug/examples/local_vs_global-1c1f887fa0f61aa7.d: examples/local_vs_global.rs

/root/repo/target/debug/examples/local_vs_global-1c1f887fa0f61aa7: examples/local_vs_global.rs

examples/local_vs_global.rs:
