/root/repo/target/debug/examples/quickstart-409850cf42848df7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-409850cf42848df7: examples/quickstart.rs

examples/quickstart.rs:
