/root/repo/target/debug/examples/schedule_timeline-73d64a8d5b2629b6.d: examples/schedule_timeline.rs

/root/repo/target/debug/examples/schedule_timeline-73d64a8d5b2629b6: examples/schedule_timeline.rs

examples/schedule_timeline.rs:
