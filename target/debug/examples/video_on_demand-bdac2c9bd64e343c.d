/root/repo/target/debug/examples/video_on_demand-bdac2c9bd64e343c.d: examples/video_on_demand.rs

/root/repo/target/debug/examples/video_on_demand-bdac2c9bd64e343c: examples/video_on_demand.rs

examples/video_on_demand.rs:
