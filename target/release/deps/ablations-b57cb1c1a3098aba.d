/root/repo/target/release/deps/ablations-b57cb1c1a3098aba.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-b57cb1c1a3098aba: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
