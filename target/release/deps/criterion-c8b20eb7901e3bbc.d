/root/repo/target/release/deps/criterion-c8b20eb7901e3bbc.d: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c8b20eb7901e3bbc.rlib: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c8b20eb7901e3bbc.rmeta: /tmp/vendor/criterion/src/lib.rs

/tmp/vendor/criterion/src/lib.rs:
