/root/repo/target/release/deps/crossbeam-2514b36fbd37ab0d.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-2514b36fbd37ab0d.rlib: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-2514b36fbd37ab0d.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
