/root/repo/target/release/deps/hot_path-c2da2258b32c018c.d: crates/bench/benches/hot_path.rs

/root/repo/target/release/deps/hot_path-c2da2258b32c018c: crates/bench/benches/hot_path.rs

crates/bench/benches/hot_path.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
