/root/repo/target/release/deps/local_comm-d7ad19f19874f51a.d: crates/bench/src/bin/local_comm.rs

/root/repo/target/release/deps/local_comm-d7ad19f19874f51a: crates/bench/src/bin/local_comm.rs

crates/bench/src/bin/local_comm.rs:
