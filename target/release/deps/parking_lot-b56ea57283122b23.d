/root/repo/target/release/deps/parking_lot-b56ea57283122b23.d: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-b56ea57283122b23.rlib: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-b56ea57283122b23.rmeta: /tmp/vendor/parking_lot/src/lib.rs

/tmp/vendor/parking_lot/src/lib.rs:
