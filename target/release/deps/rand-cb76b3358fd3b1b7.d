/root/repo/target/release/deps/rand-cb76b3358fd3b1b7.d: /tmp/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-cb76b3358fd3b1b7.rlib: /tmp/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-cb76b3358fd3b1b7.rmeta: /tmp/vendor/rand/src/lib.rs

/tmp/vendor/rand/src/lib.rs:
