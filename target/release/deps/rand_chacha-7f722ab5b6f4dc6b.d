/root/repo/target/release/deps/rand_chacha-7f722ab5b6f4dc6b.d: /tmp/vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-7f722ab5b6f4dc6b.rlib: /tmp/vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-7f722ab5b6f4dc6b.rmeta: /tmp/vendor/rand_chacha/src/lib.rs

/tmp/vendor/rand_chacha/src/lib.rs:
