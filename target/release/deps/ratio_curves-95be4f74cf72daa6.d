/root/repo/target/release/deps/ratio_curves-95be4f74cf72daa6.d: crates/bench/src/bin/ratio_curves.rs

/root/repo/target/release/deps/ratio_curves-95be4f74cf72daa6: crates/bench/src/bin/ratio_curves.rs

crates/bench/src/bin/ratio_curves.rs:
