/root/repo/target/release/deps/rayon-eb35f8b996bbc0b3.d: /tmp/vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-eb35f8b996bbc0b3.rlib: /tmp/vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-eb35f8b996bbc0b3.rmeta: /tmp/vendor/rayon/src/lib.rs

/tmp/vendor/rayon/src/lib.rs:
