/root/repo/target/release/deps/replay-9b827d0bce1b5eda.d: crates/bench/src/bin/replay.rs

/root/repo/target/release/deps/replay-9b827d0bce1b5eda: crates/bench/src/bin/replay.rs

crates/bench/src/bin/replay.rs:
