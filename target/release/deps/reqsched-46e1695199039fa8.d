/root/repo/target/release/deps/reqsched-46e1695199039fa8.d: src/lib.rs

/root/repo/target/release/deps/libreqsched-46e1695199039fa8.rlib: src/lib.rs

/root/repo/target/release/deps/libreqsched-46e1695199039fa8.rmeta: src/lib.rs

src/lib.rs:
