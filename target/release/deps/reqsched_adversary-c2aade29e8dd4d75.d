/root/repo/target/release/deps/reqsched_adversary-c2aade29e8dd4d75.d: crates/adversary/src/lib.rs crates/adversary/src/edf_worst.rs crates/adversary/src/thm21.rs crates/adversary/src/thm22.rs crates/adversary/src/thm23.rs crates/adversary/src/thm24.rs crates/adversary/src/thm25.rs crates/adversary/src/thm26.rs crates/adversary/src/thm37.rs

/root/repo/target/release/deps/libreqsched_adversary-c2aade29e8dd4d75.rlib: crates/adversary/src/lib.rs crates/adversary/src/edf_worst.rs crates/adversary/src/thm21.rs crates/adversary/src/thm22.rs crates/adversary/src/thm23.rs crates/adversary/src/thm24.rs crates/adversary/src/thm25.rs crates/adversary/src/thm26.rs crates/adversary/src/thm37.rs

/root/repo/target/release/deps/libreqsched_adversary-c2aade29e8dd4d75.rmeta: crates/adversary/src/lib.rs crates/adversary/src/edf_worst.rs crates/adversary/src/thm21.rs crates/adversary/src/thm22.rs crates/adversary/src/thm23.rs crates/adversary/src/thm24.rs crates/adversary/src/thm25.rs crates/adversary/src/thm26.rs crates/adversary/src/thm37.rs

crates/adversary/src/lib.rs:
crates/adversary/src/edf_worst.rs:
crates/adversary/src/thm21.rs:
crates/adversary/src/thm22.rs:
crates/adversary/src/thm23.rs:
crates/adversary/src/thm24.rs:
crates/adversary/src/thm25.rs:
crates/adversary/src/thm26.rs:
crates/adversary/src/thm37.rs:
