/root/repo/target/release/deps/reqsched_bench-8c72645b375ed822.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libreqsched_bench-8c72645b375ed822.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libreqsched_bench-8c72645b375ed822.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
