/root/repo/target/release/deps/reqsched_core-94be0c2ff8689614.d: crates/core/src/lib.rs crates/core/src/acurrent.rs crates/core/src/afix.rs crates/core/src/balance.rs crates/core/src/eager.rs crates/core/src/edf.rs crates/core/src/factory.rs crates/core/src/fix_balance.rs crates/core/src/lazy.rs crates/core/src/schedule.rs crates/core/src/tiebreak.rs crates/core/src/window.rs

/root/repo/target/release/deps/libreqsched_core-94be0c2ff8689614.rlib: crates/core/src/lib.rs crates/core/src/acurrent.rs crates/core/src/afix.rs crates/core/src/balance.rs crates/core/src/eager.rs crates/core/src/edf.rs crates/core/src/factory.rs crates/core/src/fix_balance.rs crates/core/src/lazy.rs crates/core/src/schedule.rs crates/core/src/tiebreak.rs crates/core/src/window.rs

/root/repo/target/release/deps/libreqsched_core-94be0c2ff8689614.rmeta: crates/core/src/lib.rs crates/core/src/acurrent.rs crates/core/src/afix.rs crates/core/src/balance.rs crates/core/src/eager.rs crates/core/src/edf.rs crates/core/src/factory.rs crates/core/src/fix_balance.rs crates/core/src/lazy.rs crates/core/src/schedule.rs crates/core/src/tiebreak.rs crates/core/src/window.rs

crates/core/src/lib.rs:
crates/core/src/acurrent.rs:
crates/core/src/afix.rs:
crates/core/src/balance.rs:
crates/core/src/eager.rs:
crates/core/src/edf.rs:
crates/core/src/factory.rs:
crates/core/src/fix_balance.rs:
crates/core/src/lazy.rs:
crates/core/src/schedule.rs:
crates/core/src/tiebreak.rs:
crates/core/src/window.rs:
