/root/repo/target/release/deps/reqsched_local-c7c6bb117425e283.d: crates/local/src/lib.rs crates/local/src/fabric.rs crates/local/src/local_eager.rs crates/local/src/local_fix.rs

/root/repo/target/release/deps/libreqsched_local-c7c6bb117425e283.rlib: crates/local/src/lib.rs crates/local/src/fabric.rs crates/local/src/local_eager.rs crates/local/src/local_fix.rs

/root/repo/target/release/deps/libreqsched_local-c7c6bb117425e283.rmeta: crates/local/src/lib.rs crates/local/src/fabric.rs crates/local/src/local_eager.rs crates/local/src/local_fix.rs

crates/local/src/lib.rs:
crates/local/src/fabric.rs:
crates/local/src/local_eager.rs:
crates/local/src/local_fix.rs:
