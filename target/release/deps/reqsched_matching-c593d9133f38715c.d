/root/repo/target/release/deps/reqsched_matching-c593d9133f38715c.d: crates/matching/src/lib.rs crates/matching/src/diff.rs crates/matching/src/graph.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/kuhn.rs crates/matching/src/matching.rs crates/matching/src/saturate.rs crates/matching/src/workspace.rs crates/matching/src/brute.rs

/root/repo/target/release/deps/libreqsched_matching-c593d9133f38715c.rlib: crates/matching/src/lib.rs crates/matching/src/diff.rs crates/matching/src/graph.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/kuhn.rs crates/matching/src/matching.rs crates/matching/src/saturate.rs crates/matching/src/workspace.rs crates/matching/src/brute.rs

/root/repo/target/release/deps/libreqsched_matching-c593d9133f38715c.rmeta: crates/matching/src/lib.rs crates/matching/src/diff.rs crates/matching/src/graph.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/kuhn.rs crates/matching/src/matching.rs crates/matching/src/saturate.rs crates/matching/src/workspace.rs crates/matching/src/brute.rs

crates/matching/src/lib.rs:
crates/matching/src/diff.rs:
crates/matching/src/graph.rs:
crates/matching/src/hopcroft_karp.rs:
crates/matching/src/kuhn.rs:
crates/matching/src/matching.rs:
crates/matching/src/saturate.rs:
crates/matching/src/workspace.rs:
crates/matching/src/brute.rs:
