/root/repo/target/release/deps/reqsched_model-f0f99eea49e1e09a.d: crates/model/src/lib.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/request.rs crates/model/src/source.rs crates/model/src/trace.rs

/root/repo/target/release/deps/libreqsched_model-f0f99eea49e1e09a.rlib: crates/model/src/lib.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/request.rs crates/model/src/source.rs crates/model/src/trace.rs

/root/repo/target/release/deps/libreqsched_model-f0f99eea49e1e09a.rmeta: crates/model/src/lib.rs crates/model/src/ids.rs crates/model/src/instance.rs crates/model/src/request.rs crates/model/src/source.rs crates/model/src/trace.rs

crates/model/src/lib.rs:
crates/model/src/ids.rs:
crates/model/src/instance.rs:
crates/model/src/request.rs:
crates/model/src/source.rs:
crates/model/src/trace.rs:
