/root/repo/target/release/deps/reqsched_offline-7944344393f29a1a.d: crates/offline/src/lib.rs crates/offline/src/analysis.rs

/root/repo/target/release/deps/libreqsched_offline-7944344393f29a1a.rlib: crates/offline/src/lib.rs crates/offline/src/analysis.rs

/root/repo/target/release/deps/libreqsched_offline-7944344393f29a1a.rmeta: crates/offline/src/lib.rs crates/offline/src/analysis.rs

crates/offline/src/lib.rs:
crates/offline/src/analysis.rs:
