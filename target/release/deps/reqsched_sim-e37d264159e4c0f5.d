/root/repo/target/release/deps/reqsched_sim-e37d264159e4c0f5.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/engine.rs crates/sim/src/strategy.rs crates/sim/src/sweep.rs

/root/repo/target/release/deps/libreqsched_sim-e37d264159e4c0f5.rlib: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/engine.rs crates/sim/src/strategy.rs crates/sim/src/sweep.rs

/root/repo/target/release/deps/libreqsched_sim-e37d264159e4c0f5.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/engine.rs crates/sim/src/strategy.rs crates/sim/src/sweep.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/engine.rs:
crates/sim/src/strategy.rs:
crates/sim/src/sweep.rs:
