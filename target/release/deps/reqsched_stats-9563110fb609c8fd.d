/root/repo/target/release/deps/reqsched_stats-9563110fb609c8fd.d: crates/stats/src/lib.rs crates/stats/src/summary.rs crates/stats/src/table.rs crates/stats/src/timeline.rs

/root/repo/target/release/deps/libreqsched_stats-9563110fb609c8fd.rlib: crates/stats/src/lib.rs crates/stats/src/summary.rs crates/stats/src/table.rs crates/stats/src/timeline.rs

/root/repo/target/release/deps/libreqsched_stats-9563110fb609c8fd.rmeta: crates/stats/src/lib.rs crates/stats/src/summary.rs crates/stats/src/table.rs crates/stats/src/timeline.rs

crates/stats/src/lib.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
crates/stats/src/timeline.rs:
