/root/repo/target/release/deps/reqsched_workloads-e21443f507612136.d: crates/workloads/src/lib.rs

/root/repo/target/release/deps/libreqsched_workloads-e21443f507612136.rlib: crates/workloads/src/lib.rs

/root/repo/target/release/deps/libreqsched_workloads-e21443f507612136.rmeta: crates/workloads/src/lib.rs

crates/workloads/src/lib.rs:
