/root/repo/target/release/deps/serde-b553bf5a5135679d.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b553bf5a5135679d.rlib: /tmp/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b553bf5a5135679d.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
