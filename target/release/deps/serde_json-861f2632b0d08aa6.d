/root/repo/target/release/deps/serde_json-861f2632b0d08aa6.d: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-861f2632b0d08aa6.rlib: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-861f2632b0d08aa6.rmeta: /tmp/vendor/serde_json/src/lib.rs

/tmp/vendor/serde_json/src/lib.rs:
