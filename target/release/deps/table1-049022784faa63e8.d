/root/repo/target/release/deps/table1-049022784faa63e8.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-049022784faa63e8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
