//! Beyond two choices: the paper remarks that EDF is `c`-competitive for
//! `c` alternatives and that the matching model generalizes; the global
//! strategies here accept any number of alternatives out of the box.

use reqsched::core::{build_strategy, StrategyKind, TieBreak};
use reqsched::sim::run_fixed;
use reqsched::workloads;

#[test]
fn global_strategies_handle_c_alternatives() {
    for c in [1u32, 2, 3, 4] {
        let inst = workloads::c_choice(6, 3, c, 7, 25, 42 + c as u64);
        for kind in StrategyKind::GLOBAL {
            let mut s = build_strategy(kind, 6, 3, TieBreak::FirstFit);
            let stats = run_fixed(s.as_mut(), &inst);
            assert!(stats.served <= stats.opt, "{} c={c}", kind.name());
            assert_eq!(stats.served + stats.expired, stats.injected);
        }
    }
}

#[test]
fn more_choices_help_the_matching_strategies() {
    // With the same arrival volume, a higher replication factor gives the
    // matching more freedom: OPT (and A_balance) serve at least as many.
    let mut prev_opt = 0usize;
    for c in [1u32, 2, 4] {
        // Same seed ⇒ same arrival pattern volume (items differ, so compare
        // via OPT monotonicity in expectation across a few seeds).
        let mut opt_sum = 0usize;
        let mut served_sum = 0usize;
        for seed in 0..5u64 {
            let inst = workloads::c_choice(6, 2, c, 8, 30, seed);
            let mut s = build_strategy(StrategyKind::ABalance, 6, 2, TieBreak::FirstFit);
            let stats = run_fixed(s.as_mut(), &inst);
            opt_sum += stats.opt;
            served_sum += stats.served;
        }
        assert!(
            opt_sum >= prev_opt,
            "replication factor {c} should not reduce the optimum"
        );
        assert!(
            served_sum * 10 >= opt_sum * 9,
            "A_balance stays close to OPT"
        );
        prev_opt = opt_sum;
    }
}

#[test]
fn edf_is_c_competitive_for_c_alternatives() {
    for c in [2u32, 3, 4] {
        for seed in 0..4u64 {
            let inst = workloads::c_choice(6, 3, c, 9, 25, 100 + seed);
            let mut s = build_strategy(
                StrategyKind::Edf {
                    cancel_sibling: false,
                },
                6,
                3,
                TieBreak::FirstFit,
            );
            let stats = run_fixed(s.as_mut(), &inst);
            assert!(
                stats.ratio() <= c as f64 + 1e-9,
                "c={c} seed={seed}: ratio {}",
                stats.ratio()
            );
        }
    }
}

#[test]
fn mixed_deadline_invariants() {
    for seed in 0..6u64 {
        let inst = workloads::mixed_deadlines(5, 4, 7, 25, seed);
        for kind in StrategyKind::GLOBAL {
            let mut s = build_strategy(kind, 5, 4, TieBreak::FirstFit);
            let stats = run_fixed(s.as_mut(), &inst);
            assert!(stats.served <= stats.opt);
            // EDF-style bounds are deadline-agnostic; the matching UBs in
            // the paper assume uniform d, so we only require the trivial
            // maximality factor here.
            assert!(2 * stats.served >= stats.opt, "{} seed {seed}", kind.name());
        }
    }
}
