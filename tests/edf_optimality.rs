//! Observations 3.1 and 3.2: EDF is 1-competitive for single-alternative
//! requests (even with heterogeneous deadlines) and 2-competitive with two
//! alternatives (tight).

use reqsched::core::{build_strategy, StrategyKind, TieBreak};
use reqsched::model::{
    Alternatives, Hint, Instance, Request, RequestId, ResourceId, Round, TraceBuilder,
};
use reqsched::sim::run_fixed;
use reqsched::workloads;

#[test]
fn edf_single_matches_opt_on_random_workloads() {
    for seed in 0..12u64 {
        let n = 2 + (seed % 5) as u32;
        let d = 1 + (seed % 4) as u32;
        let per_round = 1 + (seed % 7) as u32;
        let inst = workloads::single_alternative(n, d, per_round, 30, seed);
        let mut edf = build_strategy(StrategyKind::EdfSingle, n, d, TieBreak::FirstFit);
        let stats = run_fixed(edf.as_mut(), &inst);
        assert_eq!(
            stats.served, stats.opt,
            "seed {seed}: EDF-1 must equal OPT (Observation 3.1)"
        );
    }
}

#[test]
fn edf_single_optimal_with_heterogeneous_deadlines() {
    // The paper notes Observation 3.1 survives mixed deadlines.
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    for _case in 0..10 {
        let n = rng.gen_range(1..4u32);
        let d_max = 5;
        let mut b = TraceBuilder::new(d_max);
        for t in 0..20u64 {
            for _ in 0..rng.gen_range(0..4u32) {
                let res = rng.gen_range(0..n);
                let dl = rng.gen_range(1..=d_max);
                b.push_full(
                    Round(t),
                    Alternatives::one(ResourceId(res)),
                    dl,
                    0,
                    Hint::default(),
                );
            }
        }
        let inst = Instance::new(n, d_max, b.build());
        let mut edf = build_strategy(StrategyKind::EdfSingle, n, d_max, TieBreak::FirstFit);
        let stats = run_fixed(edf.as_mut(), &inst);
        assert_eq!(
            stats.served, stats.opt,
            "mixed-deadline EDF must be optimal"
        );
    }
}

#[test]
fn edf_single_tie_breaking_is_irrelevant_for_counts() {
    // Two same-deadline requests on one resource: either order serves both.
    let mut b = TraceBuilder::new(2);
    b.push_single(0u64, 0u32);
    b.push_single(0u64, 0u32);
    let inst = Instance::new(1, 2, b.build());
    let mut edf = build_strategy(StrategyKind::EdfSingle, 1, 2, TieBreak::FirstFit);
    let stats = run_fixed(edf.as_mut(), &inst);
    assert_eq!(stats.served, 2);
}

#[test]
fn edf_two_choice_within_factor_two_everywhere() {
    for seed in 0..8u64 {
        let inst = workloads::uniform_two_choice(5, 3, 8, 40, 1000 + seed);
        for cancel in [false, true] {
            let mut edf = build_strategy(
                StrategyKind::Edf {
                    cancel_sibling: cancel,
                },
                5,
                3,
                TieBreak::FirstFit,
            );
            let stats = run_fixed(edf.as_mut(), &inst);
            assert!(
                stats.ratio() <= 2.0 + 1e-9,
                "seed {seed} cancel {cancel}: {}",
                stats.ratio()
            );
        }
    }
}

#[test]
fn edf_c_alternatives_is_c_competitive() {
    // The paper's remark: with c alternatives EDF is c-competitive. Build a
    // c = 3 analogue of the 2-choice worst case and check the ratio stays
    // ≤ 3 (and that the construction really hurts).
    let d = 4u32;
    let mut b = TraceBuilder::new(d);
    let mut id = 0u32;
    for _ in 0..3 * d {
        b.push_full(
            Round(0),
            Alternatives::new(&[ResourceId(0), ResourceId(1), ResourceId(2)]),
            d,
            0,
            Hint::default(),
        );
        id += 1;
    }
    let _ = id;
    let inst = Instance::new(3, d, b.build());
    let mut edf = build_strategy(
        StrategyKind::Edf {
            cancel_sibling: false,
        },
        3,
        d,
        TieBreak::FirstFit,
    );
    let stats = run_fixed(edf.as_mut(), &inst);
    assert_eq!(stats.opt, 3 * d as usize);
    assert!(stats.ratio() <= 3.0 + 1e-9, "{}", stats.ratio());
    assert!(
        stats.ratio() >= 2.9,
        "all-identical requests should waste two copies per round: {}",
        stats.ratio()
    );
}

#[test]
fn edf_single_rejects_two_choice_requests() {
    let result = std::panic::catch_unwind(|| {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut edf = build_strategy(StrategyKind::EdfSingle, 2, 2, TieBreak::FirstFit);
        run_fixed(edf.as_mut(), &inst)
    });
    assert!(
        result.is_err(),
        "EdfSingle must refuse multi-alternative input"
    );
}

#[test]
fn wasted_slots_are_observable() {
    let mut b = TraceBuilder::new(1);
    b.push(0u64, 0u32, 1u32);
    let inst = Instance::new(2, 1, b.build());
    let mut edf = reqsched::core::EdfTwoChoice::new(2, false);
    let services = {
        use reqsched::core::OnlineScheduler;
        edf.on_round(Round(0), inst.trace.arrivals_at(Round(0)))
    };
    assert_eq!(services.len(), 1);
    assert_eq!(edf.wasted_slots(), 1);
    let _ = RequestId(0);
    let _: Request;
}
