//! The simulation engine is the model's referee: it must reject physically
//! impossible behaviour from (buggy) strategies rather than mis-account it.

use reqsched::core::{OnlineScheduler, Service};
use reqsched::model::{Instance, Request, RequestId, ResourceId, Round, TraceBuilder};
use reqsched::sim::run_fixed;

/// A strategy that misbehaves in a configurable way.
struct Rogue {
    mode: RogueMode,
    seen: Vec<Request>,
}

#[derive(Clone, Copy, PartialEq)]
enum RogueMode {
    DoubleServeResource,
    ServeUnknownRequest,
    ServeTwice,
    WrongResource,
    ServeExpired,
}

impl OnlineScheduler for Rogue {
    fn name(&self) -> &str {
        "rogue"
    }
    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        self.seen.extend(arrivals.iter().cloned());
        match self.mode {
            RogueMode::DoubleServeResource => {
                if self.seen.len() >= 2 && round.get() == 0 {
                    vec![
                        Service {
                            resource: ResourceId(0),
                            request: self.seen[0].id,
                        },
                        Service {
                            resource: ResourceId(0),
                            request: self.seen[1].id,
                        },
                    ]
                } else {
                    vec![]
                }
            }
            RogueMode::ServeUnknownRequest => vec![Service {
                resource: ResourceId(0),
                request: RequestId(999),
            }],
            RogueMode::ServeTwice => {
                // Serve the same request in rounds 0 and 1.
                if round.get() <= 1 && !self.seen.is_empty() {
                    vec![Service {
                        resource: ResourceId(0),
                        request: self.seen[0].id,
                    }]
                } else {
                    vec![]
                }
            }
            RogueMode::WrongResource => {
                if !self.seen.is_empty() && round.get() == 0 {
                    vec![Service {
                        resource: ResourceId(3), // not an alternative
                        request: self.seen[0].id,
                    }]
                } else {
                    vec![]
                }
            }
            RogueMode::ServeExpired => {
                // Serve the deadline-1 request one round after it expired
                // (the deadline-2 request keeps the simulation alive).
                if round.get() == 1 && !self.seen.is_empty() {
                    vec![Service {
                        resource: ResourceId(0),
                        request: self.seen[0].id,
                    }]
                } else {
                    vec![]
                }
            }
        }
    }
}

fn inst() -> Instance {
    let mut b = TraceBuilder::new(2);
    // First request has deadline 1 (expires after round 0); the second has
    // deadline 2 and keeps the simulation alive through round 1.
    b.push_full(
        Round(0),
        reqsched::model::Alternatives::two(ResourceId(0), ResourceId(1)),
        1,
        0,
        Default::default(),
    );
    b.push(0u64, 0u32, 1u32);
    Instance::new(4, 2, b.build())
}

fn run_rogue(mode: RogueMode) {
    let instance = inst();
    let mut rogue = Rogue {
        mode,
        seen: Vec::new(),
    };
    let _ = run_fixed(&mut rogue, &instance);
}

#[test]
#[should_panic(expected = "used twice")]
fn engine_rejects_double_resource_use() {
    run_rogue(RogueMode::DoubleServeResource);
}

#[test]
#[should_panic(expected = "not pending")]
fn engine_rejects_unknown_request() {
    run_rogue(RogueMode::ServeUnknownRequest);
}

#[test]
#[should_panic(expected = "not pending")]
fn engine_rejects_double_service() {
    run_rogue(RogueMode::ServeTwice);
}

#[test]
#[should_panic(expected = "infeasible service")]
fn engine_rejects_wrong_resource() {
    run_rogue(RogueMode::WrongResource);
}

#[test]
#[should_panic(expected = "not pending")]
fn engine_rejects_expired_service() {
    // Expired requests are dropped from the pending table, so the late
    // service surfaces as "not pending".
    run_rogue(RogueMode::ServeExpired);
}

#[test]
fn honest_idle_strategy_is_accepted() {
    struct Idle;
    impl OnlineScheduler for Idle {
        fn name(&self) -> &str {
            "idle"
        }
        fn on_round(&mut self, _round: Round, _arrivals: &[Request]) -> Vec<Service> {
            vec![]
        }
    }
    let instance = inst();
    let stats = run_fixed(&mut Idle, &instance);
    assert_eq!(stats.served, 0);
    assert_eq!(stats.expired, 2);
    assert!(stats.ratio().is_infinite());
}
