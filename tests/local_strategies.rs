//! End-to-end reproduction of the local-strategy results (§3.2):
//! Theorem 3.7 (`A_local_fix` is exactly 2-competitive in 2 communication
//! rounds) and Theorem 3.8 (`A_local_eager` is ≤ 5/3-competitive in ≤ 9).

use reqsched::adversary::{thm21, thm24, thm37};
use reqsched::model::{Instance, Round};
use reqsched::sim::{run_fixed, AnyStrategy};
use reqsched::workloads;

#[test]
fn thm37_local_fix_is_exactly_two_competitive() {
    for d in [2u32, 4, 6] {
        let s = thm37::scenario(d, 8);
        let mut a = AnyStrategy::LocalFix.build(4, d);
        let stats = run_fixed(a.as_mut(), &s.instance);
        assert_eq!(stats.opt, s.opt_hint.unwrap());
        assert_eq!(
            stats.served,
            s.expected_alg.unwrap(),
            "d={d}: A_local_fix must serve exactly 2d per interval"
        );
        assert!((stats.ratio() - 2.0).abs() < 1e-9, "d={d}");
    }
}

#[test]
fn local_fix_uses_at_most_two_comm_rounds_per_round() {
    let inst = workloads::uniform_two_choice(6, 3, 8, 40, 7);
    let mut a = AnyStrategy::LocalFix.build(6, 3);
    let mut last = 0u64;
    for t in 0..inst.horizon().get() {
        a.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
        assert!(a.comm_rounds_total() - last <= 2, "round {t}");
        last = a.comm_rounds_total();
    }
}

#[test]
fn local_eager_stays_within_nine_comm_rounds() {
    for (label, inst) in [
        ("thm3.7", thm37::scenario(4, 6).instance),
        ("uniform", workloads::uniform_two_choice(6, 4, 10, 40, 11)),
        ("flash", workloads::flash_crowd(6, 4, 3, 14, 8, 6, 40, 12)),
    ] {
        let mut a = AnyStrategy::LocalEager.build(inst.n_resources, inst.d);
        let mut last = 0u64;
        for t in 0..inst.horizon().get() {
            a.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
            let used = a.comm_rounds_total() - last;
            assert!(used <= 9, "{label}: round {t} used {used} comm rounds");
            last = a.comm_rounds_total();
        }
    }
}

#[test]
fn local_eager_beats_local_fix_on_its_killer() {
    for d in [2u32, 4, 8] {
        let s = thm37::scenario(d, 6);
        let mut fix = AnyStrategy::LocalFix.build(4, d);
        let fix_stats = run_fixed(fix.as_mut(), &s.instance);
        let mut eager = AnyStrategy::LocalEager.build(4, d);
        let eager_stats = run_fixed(eager.as_mut(), &s.instance);
        assert!(
            eager_stats.served > fix_stats.served,
            "d={d}: eager {} vs fix {}",
            eager_stats.served,
            fix_stats.served
        );
        assert!(
            eager_stats.ratio() <= 5.0 / 3.0 + 1e-9,
            "d={d}: eager ratio {}",
            eager_stats.ratio()
        );
    }
}

#[test]
fn local_eager_five_thirds_holds_on_global_adversaries() {
    for inst in [
        thm21::scenario(4, 8).instance,
        thm24::scenario(4, 8).instance,
    ] {
        let mut a = AnyStrategy::LocalEager.build(inst.n_resources, inst.d);
        let stats = run_fixed(a.as_mut(), &inst);
        assert!(
            stats.ratio() <= 5.0 / 3.0 + 1e-9,
            "ratio {} on {} requests",
            stats.ratio(),
            inst.total_requests()
        );
    }
}

#[test]
fn local_hierarchy_on_random_load() {
    // On an overloaded random workload the hierarchy local_fix ≤ local_eager
    // ≤ global A_balance should hold in served counts (ties allowed).
    let inst: Instance = workloads::uniform_two_choice(5, 3, 9, 60, 21);
    let serve = |s: AnyStrategy| {
        let mut a = s.build(inst.n_resources, inst.d);
        run_fixed(a.as_mut(), &inst).served
    };
    let fix = serve(AnyStrategy::LocalFix);
    let eager = serve(AnyStrategy::LocalEager);
    let global = serve(AnyStrategy::Global(
        reqsched::core::StrategyKind::ABalance,
        reqsched::core::TieBreak::FirstFit,
    ));
    assert!(fix <= eager, "fix {fix} > eager {eager}");
    assert!(eager <= global, "eager {eager} > global {global}");
}
