//! End-to-end reproduction of the paper's lower-bound theorems: replay each
//! adversarial construction against the hint-guided (pessimal) member of the
//! targeted strategy and compare the measured competitive ratio to the
//! paper's bound.

use reqsched::adversary::{edf_worst, thm21, thm22, thm23, thm24, thm25};
use reqsched::core::{build_strategy, StrategyKind, TieBreak};
use reqsched::sim::run_fixed;

fn measure(
    kind: StrategyKind,
    scenario: &reqsched::adversary::Scenario,
) -> reqsched::sim::RunStats {
    let inst = &scenario.instance;
    let mut s = build_strategy(kind, inst.n_resources, inst.d, TieBreak::HintGuided);
    run_fixed(s.as_mut(), inst)
}

#[test]
fn thm21_afix_hits_2_minus_1_over_d() {
    for d in [2u32, 3, 4, 8] {
        let s = thm21::scenario(d, 12);
        let stats = measure(StrategyKind::AFix, &s);
        assert_eq!(stats.opt, s.opt_hint.unwrap(), "d={d}");
        assert_eq!(
            stats.served,
            s.expected_alg.unwrap(),
            "d={d}: trapped A_fix must serve exactly the closed form"
        );
        let predicted = s.closed_form_ratio().unwrap();
        assert!(
            (stats.ratio() - predicted).abs() < 1e-9,
            "d={d}: measured {} vs {predicted}",
            stats.ratio()
        );
        // With 12 phases the measured ratio is within 5% of 2 - 1/d.
        assert!((stats.ratio() - s.predicted_ratio).abs() / s.predicted_ratio < 0.05);
    }
}

#[test]
fn thm22_acurrent_approaches_e_over_e_minus_1() {
    // Ratio grows towards e/(e-1) ≈ 1.582 with l.
    let mut last = 1.0;
    for l in [3u32, 4, 5, 6] {
        let s = thm22::scenario(l, 1, 2);
        let stats = measure(StrategyKind::ACurrent, &s);
        let r = stats.ratio();
        assert_eq!(stats.opt, s.opt_hint.unwrap());
        assert!(
            r > last - 0.02,
            "l={l}: ratio {r} should not drop (last {last})"
        );
        assert!(r < 1.60, "l={l}: ratio {r} exceeds the limit bound");
        last = r;
    }
    // At l = 6 the harmonic structure should already exceed 1.4.
    assert!(last > 1.40, "l=6 ratio only {last}");
}

#[test]
fn thm23_afix_balance_hits_3d_over_2d_plus_2() {
    for d in [4u32, 6, 10] {
        let s = thm23::scenario(d, 12);
        let stats = measure(StrategyKind::AFixBalance, &s);
        assert_eq!(stats.opt, s.opt_hint.unwrap(), "d={d}");
        assert_eq!(
            stats.served,
            s.expected_alg.unwrap(),
            "d={d}: A_fix_balance must serve exactly the closed form"
        );
        assert!(
            (stats.ratio() - s.predicted_ratio).abs() / s.predicted_ratio < 0.05,
            "d={d}: measured {} vs predicted {}",
            stats.ratio(),
            s.predicted_ratio
        );
    }
}

#[test]
fn thm24_aeager_hits_4_thirds() {
    for d in [2u32, 4, 6] {
        let s = thm24::scenario(d, 12);
        let stats = measure(StrategyKind::AEager, &s);
        assert_eq!(stats.opt, s.opt_hint.unwrap(), "d={d}");
        assert_eq!(stats.served, s.expected_alg.unwrap(), "d={d}");
        assert!(
            (stats.ratio() - 4.0 / 3.0).abs() < 0.03,
            "d={d}: measured {}",
            stats.ratio()
        );
    }
}

#[test]
fn thm24_at_d2_traps_the_whole_family() {
    let s = thm24::scenario(2, 20);
    for kind in [
        StrategyKind::ACurrent,
        StrategyKind::AFixBalance,
        StrategyKind::ABalance,
        StrategyKind::AEager,
    ] {
        let stats = measure(kind, &s);
        assert!(
            stats.ratio() > 4.0 / 3.0 - 0.03,
            "{}: measured {} < 4/3",
            kind.name(),
            stats.ratio()
        );
        // No strategy may exceed its proven upper bound at d = 2 (all 4/3
        // except A_fix's 1.5).
        let ub = kind.upper_bound(2).unwrap();
        assert!(
            stats.ratio() <= ub + 1e-9,
            "{}: measured {} above UB {}",
            kind.name(),
            stats.ratio(),
            ub
        );
    }
}

#[test]
fn thm25_abalance_hits_5d2_over_4d1() {
    for x in [2u32, 3] {
        let s = thm25::scenario(x, 6, 8);
        let stats = measure(StrategyKind::ABalance, &s);
        assert_eq!(stats.opt, s.opt_hint.unwrap(), "x={x}");
        assert_eq!(
            stats.served,
            s.expected_alg.unwrap(),
            "x={x}: A_balance must serve exactly the closed form"
        );
        // The measured ratio is diluted by maintenance traffic; compare to
        // the closed form rather than the asymptotic bound, but check the
        // asymptotic bound is approached from below within 10%.
        let cf = s.closed_form_ratio().unwrap();
        assert!((stats.ratio() - cf).abs() < 1e-9, "x={x}");
        assert!(
            s.predicted_ratio - cf < 0.12,
            "x={x}: dilution too strong ({cf} vs {})",
            s.predicted_ratio
        );
    }
}

#[test]
fn edf_worst_case_is_exactly_two() {
    let s = edf_worst::scenario(4, 6);
    let mut edf = build_strategy(
        StrategyKind::Edf {
            cancel_sibling: false,
        },
        2,
        4,
        TieBreak::FirstFit,
    );
    let stats = run_fixed(edf.as_mut(), &s.instance);
    assert_eq!(stats.served, s.expected_alg.unwrap());
    assert!((stats.ratio() - 2.0).abs() < 1e-9);

    // Ablation: sibling cancellation defuses this input entirely.
    let mut cancel = build_strategy(
        StrategyKind::Edf {
            cancel_sibling: true,
        },
        2,
        4,
        TieBreak::FirstFit,
    );
    let stats = run_fixed(cancel.as_mut(), &s.instance);
    assert!((stats.ratio() - 1.0).abs() < 1e-9);
}
