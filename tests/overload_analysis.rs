//! The overload machinery of the upper-bound proofs, checked on real runs:
//! Theorem 3.3's counting argument relies on (a) every failed request's
//! alternatives being overloaded, (b) each overloaded group's **last slot**
//! being used by a request of the group's injection round (for strategies
//! that keep their matching maximal), and (c) at most `(d-1)·|S_t|` failures
//! per overloaded set.

use reqsched::adversary::{thm21, thm37};
use reqsched::core::{StrategyKind, TieBreak};
use reqsched::model::Instance;
use reqsched::offline::analysis::overload_analysis;
use reqsched::offline::OfflineSolution;
use reqsched::sim::{run_fixed, AnyStrategy};
use reqsched::workloads;

fn outcome_of(strat: AnyStrategy, inst: &Instance) -> OfflineSolution {
    let mut s = strat.build(inst.n_resources, inst.d);
    let stats = run_fixed(s.as_mut(), inst);
    OfflineSolution {
        assignment: stats
            .assignment
            .iter()
            .map(|a| a.map(|(res, round)| (res.into(), round.into())))
            .collect(),
    }
}

fn uniform_deadline_battery() -> Vec<Instance> {
    vec![
        thm21::scenario(4, 5).instance,
        thm37::scenario(3, 4).instance,
        workloads::uniform_two_choice(4, 3, 7, 30, 11), // overloaded
        workloads::uniform_two_choice(5, 2, 8, 30, 12), // heavily overloaded
    ]
}

#[test]
fn failed_requests_alternatives_are_overloaded() {
    for inst in uniform_deadline_battery() {
        for strat in [
            AnyStrategy::Global(StrategyKind::AFix, TieBreak::HintGuided),
            AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit),
            AnyStrategy::LocalFix,
        ] {
            let outcome = outcome_of(strat, &inst);
            let report = overload_analysis(&inst, &outcome);
            for ro in &report.per_round {
                for &id in &ro.failed {
                    for alt in inst.trace.get(id).alternatives.as_slice() {
                        assert!(
                            ro.resources.contains(alt),
                            "{}: failed {:?}'s alternative {:?} not in S_t",
                            strat.name(),
                            id,
                            alt
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn afix_overloaded_groups_end_occupied_by_group_requests() {
    // Theorem 3.3's key step: for every overloaded resource i of round t,
    // slot (i, t+d-1) is matched to a request injected at t — otherwise the
    // maximal-matching rule would have been violated.
    for inst in uniform_deadline_battery() {
        for strat in [
            AnyStrategy::Global(StrategyKind::AFix, TieBreak::FirstFit),
            AnyStrategy::Global(StrategyKind::AFix, TieBreak::HintGuided),
            AnyStrategy::Global(StrategyKind::AFixBalance, TieBreak::FirstFit),
        ] {
            let outcome = outcome_of(strat, &inst);
            let report = overload_analysis(&inst, &outcome);
            // slot -> serving request arrival.
            let mut slot_arrival = std::collections::HashMap::new();
            for (i, a) in outcome.assignment.iter().enumerate() {
                if let Some((res, round)) = a {
                    let id = reqsched::model::RequestId(i as u32);
                    slot_arrival.insert((*res, *round), inst.trace.get(id).arrival);
                }
            }
            for ro in &report.per_round {
                let last = ro.round + (inst.d as u64 - 1);
                for &res in &ro.resources {
                    match slot_arrival.get(&(res, last)) {
                        Some(&arrival) => assert_eq!(
                            arrival,
                            ro.round,
                            "{}: last slot of overloaded group ({res:?}, t={}) \
                             served a request of another round",
                            strat.name(),
                            ro.round
                        ),
                        None => panic!(
                            "{}: last slot of overloaded group ({res:?}, t={}) empty",
                            strat.name(),
                            ro.round
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn failures_bounded_by_d_minus_one_times_set_size() {
    // If more than (d-1)|S_t| of the t-requests fail, even OPT would have
    // had to drop some — the paper's accounting needs this never to happen
    // for a maximal strategy... it CAN happen when OPT itself drops, so the
    // sharp check is against combined capacity: failed <= injected-at-t and
    // failed_that_opt_would_serve <= (d-1)|S_t|. We check the conservative
    // form on instances where OPT is lossless.
    let inst = thm21::scenario(6, 5).instance;
    assert_eq!(
        reqsched::offline::optimal_count(&inst),
        inst.total_requests(),
        "thm2.1 is lossless for OPT"
    );
    let outcome = outcome_of(
        AnyStrategy::Global(StrategyKind::AFix, TieBreak::HintGuided),
        &inst,
    );
    let report = overload_analysis(&inst, &outcome);
    assert!(!report.is_empty(), "the trap must cause failures");
    for ro in &report.per_round {
        assert!(
            ro.failed.len() <= (inst.d as usize - 1) * ro.resources.len(),
            "round {}: {} failures for |S_t| = {}",
            ro.round,
            ro.failed.len(),
            ro.resources.len()
        );
    }
}

#[test]
fn overload_intervals_cover_every_failure_round() {
    let inst = workloads::uniform_two_choice(4, 3, 7, 30, 99);
    let outcome = outcome_of(
        AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit),
        &inst,
    );
    let report = overload_analysis(&inst, &outcome);
    for ro in &report.per_round {
        for &res in &ro.resources {
            let covered = report.intervals.iter().any(|&(r, start, end)| {
                r == res && start <= ro.round && ro.round + (inst.d as u64 - 1) <= end
            });
            assert!(
                covered,
                "group ({res:?}, {}) not inside any interval",
                ro.round
            );
        }
    }
}
