//! Serde persistence of the public artifacts: instances (so experiments can
//! be archived and replayed) and run records (so sweep results can be
//! post-processed outside Rust).

use reqsched::adversary::thm21;
use reqsched::core::{StrategyKind, TieBreak};
use reqsched::model::Instance;
use reqsched::sim::{par_run, run_fixed, Job, RunStats};
use std::sync::Arc;

/// The round-trip tests below pass against the real crates.io serde stack;
/// the offline dev container vendors a stub `serde_json` whose deserializer
/// unconditionally errors, so probe at runtime and skip them there.
fn serde_roundtrip_unavailable() -> bool {
    reqsched_testsupport::skip_if_serde_stubbed("serde round-trip")
}

#[test]
fn instance_roundtrips_through_json() {
    if serde_roundtrip_unavailable() {
        return;
    }
    let inst = thm21::scenario(4, 3).instance;
    let json = serde_json::to_string(&inst).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(inst, back);
    // And the replayed instance produces the same run.
    let mut a = reqsched::core::build_strategy(
        StrategyKind::AFix,
        inst.n_resources,
        inst.d,
        TieBreak::HintGuided,
    );
    let mut b = reqsched::core::build_strategy(
        StrategyKind::AFix,
        back.n_resources,
        back.d,
        TieBreak::HintGuided,
    );
    assert_eq!(run_fixed(a.as_mut(), &inst), run_fixed(b.as_mut(), &back));
}

#[test]
fn run_stats_roundtrip_preserves_everything() {
    if serde_roundtrip_unavailable() {
        return;
    }
    let inst = reqsched::workloads::uniform_two_choice(4, 2, 5, 15, 3);
    let mut s = reqsched::core::build_strategy(StrategyKind::ABalance, 4, 2, TieBreak::FirstFit);
    let stats = run_fixed(s.as_mut(), &inst);
    let json = serde_json::to_string(&stats).unwrap();
    let back: RunStats = serde_json::from_str(&json).unwrap();
    assert_eq!(stats, back);
    assert_eq!(stats.ratio(), back.ratio());
}

#[test]
fn sweep_records_serialize_as_json_lines() {
    if serde_roundtrip_unavailable() {
        return;
    }
    let inst = Arc::new(reqsched::workloads::uniform_two_choice(4, 2, 5, 10, 9));
    let jobs: Vec<Job> = StrategyKind::GLOBAL
        .iter()
        .map(|&k| Job::new(k.name(), Arc::clone(&inst), k, TieBreak::FirstFit))
        .collect();
    let records = par_run(&jobs);
    let jsonl: Vec<String> = records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    assert_eq!(jsonl.len(), 5);
    for (line, rec) in jsonl.iter().zip(&records) {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(v["label"], rec.label.as_str());
        assert_eq!(v["stats"]["served"], rec.stats.served);
    }
}
