//! Property-based end-to-end invariants: on arbitrary random instances,
//! every strategy obeys the model's accounting identities, never beats the
//! exact optimum, and stays within its proven competitive bound.

use proptest::prelude::*;
use reqsched::core::{StrategyKind, TieBreak};
use reqsched::model::Instance;
use reqsched::sim::{run_fixed, AnyStrategy};
use reqsched::workloads;

fn random_instance() -> impl Strategy<Value = Instance> {
    (2u32..7, 1u32..5, 1u32..8, 5u64..25, 0u64..1_000_000).prop_map(
        |(n, d, per_round, rounds, seed)| {
            workloads::uniform_two_choice(n, d, per_round, rounds, seed)
        },
    )
}

fn all_strategies() -> Vec<AnyStrategy> {
    let mut v: Vec<AnyStrategy> = StrategyKind::GLOBAL
        .iter()
        .flat_map(|&k| {
            [
                AnyStrategy::Global(k, TieBreak::FirstFit),
                AnyStrategy::Global(k, TieBreak::HintGuided),
                AnyStrategy::Global(k, TieBreak::Random(3)),
            ]
        })
        .collect();
    v.push(AnyStrategy::Global(
        StrategyKind::Edf {
            cancel_sibling: false,
        },
        TieBreak::FirstFit,
    ));
    v.push(AnyStrategy::Global(
        StrategyKind::Edf {
            cancel_sibling: true,
        },
        TieBreak::FirstFit,
    ));
    v.push(AnyStrategy::LocalFix);
    v.push(AnyStrategy::LocalEager);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn accounting_identities_hold(inst in random_instance()) {
        for strat in all_strategies() {
            let mut s = strat.build(inst.n_resources, inst.d);
            let stats = run_fixed(s.as_mut(), &inst);
            prop_assert_eq!(stats.injected, inst.total_requests());
            prop_assert_eq!(
                stats.served + stats.expired,
                stats.injected,
                "{}: served+expired != injected", strat.name()
            );
            prop_assert!(stats.served <= stats.opt,
                "{}: beat the optimum?!", strat.name());
            prop_assert_eq!(
                stats.per_round_served.iter().map(|&x| x as usize).sum::<usize>(),
                stats.served
            );
            prop_assert_eq!(
                stats.assignment.iter().filter(|a| a.is_some()).count(),
                stats.served
            );
            if let Some(ub) = strat.upper_bound(inst.d) {
                prop_assert!(
                    stats.ratio() <= ub + 1e-9,
                    "{}: ratio {} > bound {}", strat.name(), stats.ratio(), ub
                );
            }
        }
    }

    #[test]
    fn determinism_of_every_strategy(inst in random_instance()) {
        for strat in all_strategies() {
            let mut s1 = strat.build(inst.n_resources, inst.d);
            let a = run_fixed(s1.as_mut(), &inst);
            let mut s2 = strat.build(inst.n_resources, inst.d);
            let b = run_fixed(s2.as_mut(), &inst);
            prop_assert_eq!(a, b, "{} must be deterministic", strat.name());
        }
    }

    #[test]
    fn rescheduling_strategies_dominate_afix(inst in random_instance()) {
        // A_eager computes a maximum matching of G_t each round; on any
        // input it serves at least as much as the maximal-only A_fix under
        // the same tie-break... not a theorem pointwise, but the optimum
        // never does worse, and no strategy may serve more than OPT.
        let mut afix = AnyStrategy::Global(StrategyKind::AFix, TieBreak::FirstFit)
            .build(inst.n_resources, inst.d);
        let fix_stats = run_fixed(afix.as_mut(), &inst);
        // A maximal matching is a 2-approximation of the maximum:
        prop_assert!(2 * fix_stats.served >= fix_stats.opt);
    }

    #[test]
    fn zipf_and_flash_crowd_also_validate(
        seed in 0u64..100_000,
        d in 1u32..5,
    ) {
        let insts = [
            workloads::zipf_replicated(6, d, 20, 1.0, 6, 20, seed),
            workloads::flash_crowd(6, d, 2, 8, 5, 5, 20, seed),
        ];
        for inst in insts {
            for strat in [
                AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit),
                AnyStrategy::LocalEager,
            ] {
                let mut s = strat.build(inst.n_resources, inst.d);
                let stats = run_fixed(s.as_mut(), &inst);
                prop_assert!(stats.served <= stats.opt);
                let ub = strat.upper_bound(inst.d).unwrap();
                prop_assert!(stats.ratio() <= ub + 1e-9);
            }
        }
    }
}
