//! The paper's structural lemmas about augmenting paths — the machinery of
//! every upper-bound proof — verified on the implementations.
//!
//! For a strategy's final schedule `M_alg` and the exact optimum `M_opt` on
//! the same horizon graph, the components of `M_alg ⊕ M_opt` are alternating
//! paths/cycles, and the *order* of an augmenting path is its number of
//! request vertices (paper §1.2):
//!
//! * maximal-matching strategies (`A_fix` family, `A_local_fix`) leave no
//!   augmenting path of order 1 (Theorems 3.3/3.4/3.7);
//! * `A_eager`/`A_balance` leave none of order ≤ 2 (Theorems 3.5/3.6);
//! * the number of augmenting paths equals `OPT − ALG` (matching theory).

use reqsched::adversary::{thm21, thm23, thm24, thm37};
use reqsched::core::{StrategyKind, TieBreak};
use reqsched::matching::symmetric_difference;
use reqsched::model::Instance;
use reqsched::offline::{optimal_schedule, solution_matching, OfflineSolution};
use reqsched::sim::{run_fixed, AnyStrategy, RunStats};
use reqsched::workloads;

fn alg_matching(inst: &Instance, stats: &RunStats) -> reqsched::matching::Matching {
    let sol = OfflineSolution {
        assignment: stats
            .assignment
            .iter()
            .map(|a| a.map(|(res, round)| (res.into(), round.into())))
            .collect(),
    };
    sol.check(inst)
        .expect("algorithm schedule must be feasible");
    solution_matching(inst, &sol)
}

fn min_aug_order(inst: &Instance, strat: AnyStrategy) -> (Option<usize>, usize, usize) {
    let mut s = strat.build(inst.n_resources, inst.d);
    let stats = run_fixed(s.as_mut(), inst);
    let m_alg = alg_matching(inst, &stats);
    let m_opt = solution_matching(inst, &optimal_schedule(inst));
    let report = symmetric_difference(&m_alg, &m_opt);
    assert_eq!(
        report.n_augmenting(),
        stats.opt - stats.served,
        "{}: augmenting paths must equal the cardinality gap",
        strat.name()
    );
    (report.min_order(), stats.served, stats.opt)
}

fn battery() -> Vec<Instance> {
    vec![
        thm21::scenario(4, 4).instance,
        thm23::scenario(4, 4).instance,
        thm24::scenario(4, 4).instance,
        thm37::scenario(3, 4).instance,
        workloads::uniform_two_choice(5, 3, 8, 40, 5),
        workloads::flash_crowd(6, 4, 3, 10, 8, 6, 40, 6),
        workloads::zipf_replicated(6, 3, 30, 1.3, 8, 40, 7),
    ]
}

#[test]
fn maximal_family_leaves_no_order_one_paths() {
    for inst in battery() {
        for strat in [
            AnyStrategy::Global(StrategyKind::AFix, TieBreak::HintGuided),
            AnyStrategy::Global(StrategyKind::AFix, TieBreak::FirstFit),
            AnyStrategy::Global(StrategyKind::AFixBalance, TieBreak::FirstFit),
            AnyStrategy::Global(StrategyKind::ACurrent, TieBreak::FirstFit),
            AnyStrategy::LocalFix,
        ] {
            let (min, served, opt) = min_aug_order(&inst, strat);
            if let Some(min) = min {
                assert!(
                    min >= 2,
                    "{}: augmenting path of order {min} ({served}/{opt})",
                    strat.name()
                );
            }
        }
    }
}

#[test]
fn eager_family_leaves_no_order_two_paths() {
    for inst in battery() {
        for strat in [
            AnyStrategy::Global(StrategyKind::AEager, TieBreak::FirstFit),
            AnyStrategy::Global(StrategyKind::AEager, TieBreak::HintGuided),
            AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit),
            AnyStrategy::Global(StrategyKind::ABalance, TieBreak::HintGuided),
        ] {
            let (min, served, opt) = min_aug_order(&inst, strat);
            if let Some(min) = min {
                assert!(
                    min >= 3,
                    "{}: augmenting path of order {min} ({served}/{opt})",
                    strat.name()
                );
            }
        }
    }
}

#[test]
fn lemmas_hold_on_delta_path_schedules() {
    // The delta engine must not weaken the structural guarantees: the same
    // augmenting-path orders as the from-scratch path, checked explicitly
    // under both solve modes and both delta-capable tie-breaks (the default
    // mode may change; this test pins both paths regardless).
    use reqsched::core::{build_strategy_with_mode, SolveMode};
    for inst in battery() {
        let m_opt = solution_matching(&inst, &optimal_schedule(&inst));
        for (kind, min_required) in [
            (StrategyKind::ACurrent, 2),
            (StrategyKind::AFixBalance, 2),
            (StrategyKind::AEager, 3),
            (StrategyKind::ABalance, 3),
        ] {
            for tie in [TieBreak::FirstFit, TieBreak::LatestFit] {
                for mode in [SolveMode::Delta, SolveMode::Fresh] {
                    let mut s = build_strategy_with_mode(kind, inst.n_resources, inst.d, tie, mode);
                    let stats = run_fixed(s.as_mut(), &inst);
                    let m_alg = alg_matching(&inst, &stats);
                    let report = symmetric_difference(&m_alg, &m_opt);
                    assert_eq!(
                        report.n_augmenting(),
                        stats.opt - stats.served,
                        "{} {tie:?} {mode:?}: path count vs cardinality gap",
                        kind.name()
                    );
                    if let Some(min) = report.min_order() {
                        assert!(
                            min >= min_required,
                            "{} {tie:?} {mode:?}: augmenting path of order {min}",
                            kind.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn optimal_schedule_has_no_augmenting_paths_against_itself() {
    let inst = workloads::uniform_two_choice(4, 2, 6, 20, 9);
    let opt = solution_matching(&inst, &optimal_schedule(&inst));
    let report = symmetric_difference(&opt, &opt);
    assert_eq!(report.n_augmenting(), 0);
    assert!(report.components.is_empty());
}

#[test]
fn cardinality_gap_identity_under_overload() {
    // Heavy overload: gaps are large; the identity must still hold exactly
    // (it is asserted inside min_aug_order).
    let inst = workloads::uniform_two_choice(3, 2, 12, 30, 13);
    for strat in [
        AnyStrategy::Global(StrategyKind::AFix, TieBreak::FirstFit),
        AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit),
        AnyStrategy::LocalEager,
    ] {
        let (_, served, opt) = min_aug_order(&inst, strat);
        assert!(served <= opt);
        assert!(served * 2 >= opt, "even A_fix is 2-competitive here");
    }
}
