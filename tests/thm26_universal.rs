//! Theorem 2.6 end-to-end: the adaptive adversary forces a competitive
//! ratio of at least 45/41 on *every* strategy in the workspace — global and
//! local, under every tie-break.

use reqsched::adversary::thm26::{Thm26Adversary, N_RESOURCES, PREDICTED_RATIO};
use reqsched::core::{StrategyKind, TieBreak};
use reqsched::model::Instance;
use reqsched::sim::{run_source, AnyStrategy};

fn measure(strategy: AnyStrategy, d: u32, intervals: u32) -> (f64, usize, usize) {
    let mut adv = Thm26Adversary::new(d, intervals);
    let mut s = strategy.build(N_RESOURCES, d);
    let (mut stats, trace) = run_source(s.as_mut(), &mut adv, N_RESOURCES, d);
    let inst = Instance::new(N_RESOURCES, d, trace);
    stats.opt = reqsched::offline::optimal_count(&inst);
    (stats.ratio(), stats.served, stats.opt)
}

#[test]
fn opt_serves_everything() {
    // The construction is lossless for the offline optimum.
    let d = 6;
    let mut adv = Thm26Adversary::new(d, 3);
    let mut s =
        AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit).build(N_RESOURCES, d);
    let (_, trace) = run_source(s.as_mut(), &mut adv, N_RESOURCES, d);
    assert_eq!(trace.len(), adv.total_requests());
    let inst = Instance::new(N_RESOURCES, d, trace);
    assert_eq!(
        reqsched::offline::optimal_count(&inst),
        inst.total_requests(),
        "OPT must serve every request of the Theorem 2.6 input"
    );
}

#[test]
fn every_strategy_loses_at_least_the_universal_bound() {
    let d = 9;
    let intervals = 6;
    let strategies: Vec<AnyStrategy> = StrategyKind::GLOBAL
        .iter()
        .flat_map(|&k| {
            [
                AnyStrategy::Global(k, TieBreak::FirstFit),
                AnyStrategy::Global(k, TieBreak::Random(5)),
            ]
        })
        .chain([AnyStrategy::LocalFix, AnyStrategy::LocalEager])
        .collect();
    for strat in strategies {
        let (ratio, served, opt) = measure(strat, d, intervals);
        // Finite-horizon slack: the bound is asymptotic in d and the number
        // of intervals; at d=9 with 6 intervals we demand 97% of it.
        assert!(
            ratio >= PREDICTED_RATIO * 0.97,
            "{}: ratio {ratio} ({served}/{opt}) below 45/41 = {PREDICTED_RATIO}",
            strat.name()
        );
    }
}

#[test]
fn adaptivity_targets_the_weakest_colour() {
    // Against a strong strategy the adversary still extracts ≥ ceil(8d/9)
    // misses per interval, because whatever colour is least served gets
    // blocked.
    let d = 9;
    let intervals = 8;
    let (ratio, served, opt) = measure(
        AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit),
        d,
        intervals,
    );
    let lost = opt - served;
    let min_lost_per_interval = (8 * d as usize).div_ceil(9);
    assert!(
        lost >= intervals as usize * min_lost_per_interval,
        "lost {lost} < {intervals} * {min_lost_per_interval} (ratio {ratio})"
    );
}
