//! Validation of the paper's upper bounds (Theorems 3.3–3.6, Observations
//! 3.1/3.2): on every input we can throw at them — the adversarial traces
//! built for *other* strategies, random two-choice arrivals, Zipf-skewed
//! replica traffic, flash crowds — no strategy's measured competitive ratio
//! may exceed its proven bound.

use reqsched::adversary::{thm21, thm23, thm24, thm37};
use reqsched::core::{StrategyKind, TieBreak};
use reqsched::model::Instance;
use reqsched::sim::{par_run, AnyStrategy, Job};
use reqsched::workloads;
use std::sync::Arc;

fn battery(d: u32, seed: u64) -> Vec<(String, Arc<Instance>)> {
    let mut out: Vec<(String, Arc<Instance>)> = Vec::new();
    if d >= 2 && d.is_multiple_of(2) {
        out.push(("thm2.1".into(), Arc::new(thm21::scenario(d, 6).instance)));
        out.push(("thm2.3".into(), Arc::new(thm23::scenario(d, 6).instance)));
        out.push(("thm2.4".into(), Arc::new(thm24::scenario(d, 6).instance)));
    }
    out.push(("thm3.7".into(), Arc::new(thm37::scenario(d, 4).instance)));
    out.push((
        "uniform".into(),
        Arc::new(workloads::uniform_two_choice(6, d, 7, 60, seed)),
    ));
    out.push((
        "zipf".into(),
        Arc::new(workloads::zipf_replicated(8, d, 40, 1.1, 9, 60, seed + 1)),
    ));
    out.push((
        "flash".into(),
        Arc::new(workloads::flash_crowd(6, d, 3, 12, 10, 8, 50, seed + 2)),
    ));
    out
}

#[test]
fn no_global_strategy_exceeds_its_upper_bound() {
    let mut jobs = Vec::new();
    for d in [2u32, 3, 4, 6] {
        for (name, inst) in battery(d, 42 + d as u64) {
            for kind in StrategyKind::GLOBAL {
                for tie in [
                    TieBreak::FirstFit,
                    TieBreak::HintGuided,
                    TieBreak::Random(7),
                ] {
                    jobs.push(Job::new(
                        format!("{name} d={d} {} {}", kind.name(), tie.label()),
                        Arc::clone(&inst),
                        kind,
                        tie,
                    ));
                }
            }
        }
    }
    let records = par_run(&jobs);
    for (job, rec) in jobs.iter().zip(&records) {
        let AnyStrategy::Global(kind, _) = job.strategy else {
            unreachable!()
        };
        let ub = kind.upper_bound(job.instance.d).unwrap();
        assert!(
            rec.ratio <= ub + 1e-9,
            "{}: measured ratio {} exceeds proven upper bound {}",
            job.label,
            rec.ratio,
            ub
        );
    }
}

#[test]
fn local_strategies_respect_their_bounds() {
    let mut jobs = Vec::new();
    for d in [2u32, 4, 5] {
        for (name, inst) in battery(d, 1234 + d as u64) {
            for strat in [AnyStrategy::LocalFix, AnyStrategy::LocalEager] {
                jobs.push(Job::any(
                    format!("{name} d={d} {}", strat.name()),
                    Arc::clone(&inst),
                    strat,
                ));
            }
        }
    }
    let records = par_run(&jobs);
    for (job, rec) in jobs.iter().zip(&records) {
        let ub = job.strategy.upper_bound(job.instance.d).unwrap();
        assert!(
            rec.ratio <= ub + 1e-9,
            "{}: measured ratio {} exceeds proven upper bound {}",
            job.label,
            rec.ratio,
            ub
        );
    }
}

#[test]
fn edf_two_choice_never_worse_than_twice_opt() {
    for d in [1u32, 3, 5] {
        for (name, inst) in battery(d, 99 + d as u64) {
            for cancel in [false, true] {
                let mut s = reqsched::core::build_strategy(
                    StrategyKind::Edf {
                        cancel_sibling: cancel,
                    },
                    inst.n_resources,
                    inst.d,
                    TieBreak::FirstFit,
                );
                let stats = reqsched::sim::run_fixed(s.as_mut(), &inst);
                assert!(
                    stats.ratio() <= 2.0 + 1e-9,
                    "{name} d={d} cancel={cancel}: ratio {}",
                    stats.ratio()
                );
            }
        }
    }
}

#[test]
fn better_strategies_dominate_on_adversarial_inputs() {
    // Table 1's qualitative ordering: on the A_fix killer, strategies that
    // may reschedule strictly beat A_fix.
    let inst = Arc::new(thm21::scenario(6, 10).instance);
    let run = |kind: StrategyKind| {
        par_run(&[Job::new("x", Arc::clone(&inst), kind, TieBreak::HintGuided)])[0].ratio
    };
    let afix = run(StrategyKind::AFix);
    let aeager = run(StrategyKind::AEager);
    let abalance = run(StrategyKind::ABalance);
    assert!(aeager < afix, "A_eager {aeager} vs A_fix {afix}");
    assert!(abalance < afix, "A_balance {abalance} vs A_fix {afix}");
}
