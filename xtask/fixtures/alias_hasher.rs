//! Fixture: hashers renamed out of the string scanner's sight. The only
//! line containing the substring `HashMap` is the (waived) `use` — every
//! later use goes through the rename or the alias chain, which only the
//! crate index resolves. Scanned as `crates/core/src/fixture.rs`.

// lint: fixture waiver — the rename itself is the evasion under test
use std::collections::HashMap as FastMap;
type Cache = FastMap<u64, u64>;

/// Hit: construction through the rename.
pub fn build() -> Cache {
    FastMap::new()
}

/// Waived: a deliberate rename use.
pub fn waived_use() -> usize {
    // lint: fixture waiver — deliberate rename use under test
    FastMap::<u64, u64>::new().len()
}

/// Hit: the alias in a signature.
pub fn lookup(c: &Cache, k: u64) -> Option<u64> {
    c.get(&k).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_alias_freely() {
        let c: Cache = build();
        assert!(c.is_empty());
    }
}
