//! Fixture: uses a hasher alias declared in a *sibling file* — this file
//! contains no hasher-like string at all, so the only way to catch it is
//! the per-crate index built across both files. Scanned as
//! `crates/core/src/fixture_use.rs` alongside `alias_hasher.rs`.

/// Hit: cross-file alias use.
pub fn cross_file(c: &Cache) -> usize {
    c.len()
}

/// Hit: cross-file construction.
pub fn fresh() -> Cache {
    Cache::default()
}
