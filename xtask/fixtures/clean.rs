//! Fixture: a file every rule must pass. Mentions of banned tokens in
//! comments ("HashMap", ".unwrap()", "Instant::now", "thread_rng") and in
//! strings must not trip the sanitizer-backed matchers.

use std::collections::BTreeMap;

fn deterministic(ids: &[u32]) -> BTreeMap<u32, usize> {
    let mut counts = BTreeMap::new();
    for &id in ids {
        *counts.entry(id).or_insert(0usize) += 1;
    }
    let _doc = "HashMap and SystemTime::now inside a string are fine";
    counts
}
