//! Fixture: order-sensitive float accumulation in parallel reductions.
//! Scanned by the selftests as `crates/offline/src/fixture.rs`.

use rayon::prelude::*;

/// Hit: f64 sum over a work-stealing reduce — the join order leaks.
pub fn par_mean(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).reduce(|| 0.0, |a, b| a + b)
}

/// Hit: fold with an f32 accumulator.
pub fn par_energy(xs: &[f32]) -> f32 {
    xs.par_iter().fold(|| 0.0f32, |acc, x| acc + x).sum()
}

/// Waived: tolerance-tested aggregate where order is accepted.
pub fn waived_sum(xs: &[f64]) -> f64 {
    // lint: fixture waiver — order-insensitive within the test tolerance
    xs.par_iter().map(|x| x + 1.0).reduce(|| 0.0, |a, b| a + b)
}

/// Exempt from the float rule: integer reduction is associative. (The
/// string scanner's own par-reduce rule still wants its ordering note.)
pub fn par_count(xs: &[u64]) -> u64 {
    // lint: fixture waiver — integer addition commutes; any schedule sums the same
    xs.par_iter().map(|x| x & 1).reduce(|| 0, |a, b| a + b)
}

/// Exempt: serial folds are deterministic whatever the element type.
pub fn serial_mean(xs: &[f64]) -> f64 {
    let total = xs.iter().fold(0.0, |a, x| a + x);
    total / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_reduce_floats() {
        let xs = [1.0f64, 2.0];
        let s = xs.par_iter().cloned().reduce(|| 0.0, |a, b| a + b);
        assert!(s > 0.0);
    }
}
