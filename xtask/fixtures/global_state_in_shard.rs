//! Fixture: seeded `global-state-in-shard` violations. Scanned as a
//! `crates/sim/src/` `LibSource` path by `tests/selftest.rs`; never
//! compiled, never walked by `analyze_tree`.
//!
//! Every pattern here is a channel through which concurrently stepped
//! shard groups could observe each other outside the recorded round
//! history: a lazily initialized table, a memo cell, a thread-local
//! scratch buffer, a mutable static.

use std::sync::{LazyLock, OnceLock};

static TABLE: LazyLock<Vec<u64>> = LazyLock::new(|| vec![0; 64]);

static MEMO: OnceLock<usize> = OnceLock::new();

static mut COUNTER: u64 = 0;

thread_local! {
    static SCRATCH: std::cell::RefCell<Vec<u32>> = std::cell::RefCell::new(Vec::new());
}

lazy_static! {
    static ref LOOKUP: Vec<u8> = vec![0; 16];
}

// lint: fixture waiver — cell owned by a value the caller passes explicitly
fn waived_cell() -> &'static OnceLock<usize> {
    &MEMO
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    static TEST_MEMO: OnceLock<usize> = OnceLock::new();
}
