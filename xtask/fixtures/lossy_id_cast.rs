//! Fixture: silent narrowing of round/slot/id arithmetic. Scanned as
//! `crates/core/src/fixture.rs`.

/// Hit: a round-derived slot encoding truncated to u32.
pub fn slot_of(round: u64, n: u64) -> u32 {
    (round * n) as u32
}

/// Hit: a window-relative round offset truncated to u32.
pub fn col_of(arrival_round: u64, front: u64) -> u32 {
    (arrival_round - front) as u32
}

/// Hit: a request id narrowed below its domain width.
pub fn small_id(id: u32) -> u16 {
    id as u16
}

/// Waived: the capacity bound is asserted by the caller.
pub fn waived_slot(round: u64, n: u64) -> u32 {
    // lint: fixture waiver — capacity bound asserted by the caller
    (round * n) as u32
}

/// Exempt: widening casts are always safe.
pub fn widen(round_idx: u32) -> u64 {
    round_idx as u64
}

/// Exempt: ids keep their full u32 width.
pub fn same_width(id: u32) -> u32 {
    id as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_narrow() {
        let small = (7u64 * 3) as u32;
        assert_eq!(slot_of(7, 3), small);
    }
}
