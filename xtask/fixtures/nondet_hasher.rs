//! Fixture: seeded `nondet-hasher` violations. Scanned as `LibSource` by
//! `tests/selftest.rs`; never compiled, never walked by `analyze_tree`.

use std::collections::HashMap;
use std::collections::HashSet;

fn iteration_order_leaks(ids: &[u32]) -> Vec<u32> {
    let mut seen = HashSet::new();
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &id in ids {
        seen.insert(id);
        *counts.entry(id).or_default() += 1;
    }
    // Iteration order of the default hasher varies across processes — the
    // exact bug class the rule exists to keep out of scheduling code.
    counts.keys().copied().collect()
}
