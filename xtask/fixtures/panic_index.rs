//! Fixture: subtracting index expressions on hot paths. Scanned as
//! `crates/matching/src/fixture.rs` (a hot-path crate).

/// Hit: the classic last-element underflow.
pub fn last_len_minus_one(xs: &[u64]) -> u64 {
    xs[xs.len() - 1]
}

/// Hit: cursor walk-back.
pub fn walk_back(edges: &[u32], cursor: usize) -> u32 {
    edges[cursor - 1]
}

/// Waived: the loop invariant keeps the cursor positive.
pub fn waived_back(edges: &[u32], cursor: usize) -> u32 {
    // lint: fixture waiver — cursor > 0 by the loop invariant
    edges[cursor - 1]
}

/// Exempt: no subtraction in the index expression.
pub fn plain_index(xs: &[u64], i: usize) -> u64 {
    xs[i]
}

/// Exempt: ranges lex as `..`, not subtraction.
pub fn range_slice(xs: &[u64], i: usize) -> &[u64] {
    &xs[..i]
}

/// Exempt: the subtraction happens before the index, where it reads as a
/// named intent instead of an inline trap.
pub fn hoisted(edges: &[u32], cursor: usize) -> u32 {
    let taken = cursor - 1;
    edges[taken]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_index_freely() {
        let xs = [1u64, 2];
        assert_eq!(xs[xs.len() - 1], 2);
        assert_eq!(last_len_minus_one(&xs), 2);
    }
}
