//! Fixture: shared state reaching Rayon parallel closures. Scanned by the
//! selftests as `crates/sim/src/fixture.rs` (a parallel-engine crate).
//! None of these lines contain a string the line scanner knows — only the
//! AST engine's capture analysis sees the hazard.

use rayon::prelude::*;
use std::sync::Mutex;

/// A cache-like struct whose interior mutability the crate index marks.
pub struct SharedCache {
    inner: Mutex<Vec<u64>>,
}

/// Hit: the `&Mutex` parameter leaks into the par closure via `.lock()`.
pub fn lock_in_par(shared: &Mutex<Vec<u64>>, xs: &[u64]) {
    xs.par_iter().for_each(|x| {
        if let Ok(mut v) = shared.lock() {
            v.push(*x);
        }
    });
}

/// Hit: interior mutability hides behind a crate-local struct type.
pub fn cache_in_par(cache: &SharedCache, xs: &[u64]) -> Vec<u64> {
    xs.par_iter().map(|x| probe(cache, *x)).collect()
}

/// Hit: `&mut` capture of an accumulator owned outside the closure.
pub fn mut_capture(xs: &[u64]) {
    let mut total = 0u64;
    xs.par_iter().for_each(|x| bump(&mut total, *x));
}

/// Waived: a deliberate share whose fill is value-identical.
pub fn waived_share(cache: &SharedCache, xs: &[u64]) -> Vec<u64> {
    // lint: fixture waiver — the share is deterministic by construction
    xs.par_iter().map(|x| probe(cache, *x)).collect()
}

/// Exempt: the closure touches only its shard-owned item.
pub fn shard_owned(groups: &mut Vec<SharedCache>) {
    groups.par_iter_mut().for_each(|g| g.reset());
}

/// Exempt: closure-local state is born and dies inside one task.
pub fn closure_local(xs: &[u64]) {
    xs.par_iter().for_each(|x| {
        let scratch = Mutex::new(Vec::new());
        if let Ok(mut v) = scratch.lock() {
            v.push(*x);
        }
    });
}

/// Exempt: serial iteration may use the cache freely.
pub fn serial_ok(cache: &SharedCache, xs: &[u64]) -> usize {
    xs.iter().map(|x| probe(cache, *x)).count()
}
