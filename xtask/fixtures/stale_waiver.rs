//! Fixture: a `// lint:` waiver that no rule consumes. Stale suppressions
//! rot — the wall makes the unused comment itself an error. Scanned as
//! `crates/core/src/fixture.rs`.

/// Nothing in this function fires any rule; the waiver below is dead.
pub fn innocent(x: u64) -> u64 {
    // lint: stale — nothing on the next line fires any rule
    x + 1
}
