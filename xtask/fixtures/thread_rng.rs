//! Fixture: seeded `thread-rng` violations. Scanned as `LibSource` (caught)
//! and as `BenchSource` (exempt) by `tests/selftest.rs`; never compiled.

fn unseeded_tie_break(n: u32) -> u32 {
    use rand::Rng as _;
    let mut rng = rand::thread_rng();
    if rng.gen_bool(0.5) {
        rand::random::<u32>() % n
    } else {
        0
    }
}
