//! Fixture: seeded `unjustified-allow` violations. Scanned as
//! `TestOrExample` by `tests/selftest.rs` — the rule applies everywhere.

#[allow(dead_code)]
fn bare_allow() {}

#[allow(clippy::needless_range_loop)] // lint: fixture waiver — recorded, not flagged
fn justified_allow(xs: &mut [u32]) {
    for i in 0..xs.len() {
        xs[i] += 1;
    }
}
