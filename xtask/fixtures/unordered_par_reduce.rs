//! Seeded violations for the `unordered-par-reduce` detector. Not compiled —
//! scanned by `xtask/tests/selftest.rs`.
//!
//! Mentions in comments are ignored: par_iter().reduce() is the banned shape.

use rayon::prelude::*;

/// Hit 1: single-line parallel reduce — float addition is not associative,
/// so the sum depends on the join order.
fn bad_inline(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).reduce(|| 0.0, |a, b| a + b)
}

/// Hits 2 and 3: builder chain puts the reduction on its own line — the
/// lookback window must still connect it to the parallel introduction.
fn bad_chained(xs: Vec<u64>) -> u64 {
    xs.into_par_iter()
        .fold(|| 0u64, |acc, x| acc.wrapping_sub(x))
        .reduce(|| 0u64, |a, b| a.wrapping_sub(b))
}

/// Waived: the justification records why the operator is order-insensitive.
fn waived(xs: &[u64]) -> u64 {
    // lint: fixture waiver — u64 wrapping add is associative and commutative
    xs.par_iter().copied().reduce(|| 0, |a, b| a.wrapping_add(b))
}

/// Clean: the parallel pipeline ends in an ordered collect; the serial fold
/// over its result is deterministic.
fn fine_collect_then_serial_fold(xs: &[u64]) -> u64 {
    let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
    doubled.iter().fold(0, |a, b| a + b)
}

/// Clean: a serial fold far away from any parallel introduction.
fn fine_serial_fold(xs: &[u64]) -> u64 {
    let mut total = 0u64;
    total += xs.len() as u64;
    xs.iter().fold(total, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test code may reduce in parallel freely (oracles re-sort anyway).
    #[test]
    fn exempt_in_tests() {
        let xs = [1u64, 2, 3];
        let _ = xs.par_iter().copied().reduce(|| 0, |a, b| a + b);
    }
}
