//! Fixture: seeded `unwrap-in-lib` violations, plus the two exemptions the
//! rule grants (`#[cfg(test)]` regions and `// lint:` waivers). Scanned as
//! `LibSource` by `tests/selftest.rs`; never compiled.

fn panics_in_library_code(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    let last = xs.last().expect("nonempty");
    first + last
}

fn waived(xs: &[u32]) -> u32 {
    // lint: fixture waiver — the self-test asserts this is recorded, not flagged
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = [1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
