//! Fixture: seeded `vec-bool` violations. Scanned as `LibSource` under
//! `crates/matching/src/` and `crates/core/src/` by `tests/selftest.rs`;
//! never compiled, never walked by `analyze_tree`.

/// A visited mask as a byte-per-flag vector — the allocation pattern the
/// rule keeps out of the matching/core hot path.
fn visited_mask(n: usize) -> Vec<bool> {
    let mut visited: Vec<bool> = vec![false; n];
    visited[0] = true;
    visited
}

// Mentions in comments or strings are not findings: Vec<bool> here is fine,
// and so is this one:
fn stringly() -> &'static str {
    "Vec<bool> in a string literal"
}

// A justified occurrence is a recorded suppression, not a finding.
// lint: FFI layout requires byte-per-flag here
fn waived() -> Vec<bool> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    // Test code may use Vec<bool> freely.
    fn oracle() -> Vec<bool> {
        vec![true, false]
    }
}
