//! Fixture: seeded `wall-clock` violations. Scanned as `LibSource` (caught)
//! and as `BenchSource` (exempt) by `tests/selftest.rs`; never compiled.

fn round_budget_from_the_wall() -> u64 {
    let started = std::time::Instant::now();
    let epoch = std::time::SystemTime::now();
    let _ = epoch;
    started.elapsed().as_millis() as u64
}
