//! AST-grade analysis: token trees, the per-crate item index, and the five
//! deep rules a line scanner cannot express.
//!
//! Built on the full-fidelity lexer of [`crate::lex`], this module parses
//! each source file once into nested token trees, indexes every crate's
//! items (`use` renames, `type` aliases, interior-mutable structs, statics,
//! function signatures), and then walks expressions with real context:
//! `#[cfg(test)]` gating, Rayon parallel-iterator chains, closure capture
//! scopes, method chains and cast expressions.
//!
//! The rules (see `docs/LINTS.md` for rationale):
//!
//! | rule | what it catches |
//! |---|---|
//! | `rayon-capture-audit` | `&mut` captures and shared interior-mutability (`Mutex`, `RwLock`, `Atomic*`, `RefCell`, `Cell`, …) reachable from a Rayon parallel closure in `crates/{sim,offline,matching}` — unless the state is the shard-owned item the closure receives |
//! | `float-order-in-par` | `f32`/`f64` accumulation inside a parallel `reduce`/`fold`/`sum`/`product` — float addition is not associative, so the work-stealing join order leaks into the value |
//! | `alias-evading-hasher` | uses of `HashMap`/`HashSet` reached through `use … as` renames or `type` aliases — invisible to the substring scanner at every use site |
//! | `lossy-id-cast` | `as` casts that narrow id/round/slot-typed values (`Round` is `u64`; ids are `u32`) below their domain width |
//! | `panic-path-index` | slice `[expr]` indexing whose index expression subtracts — the classic underflow/off-by-one panic — in the hot-path crates' library sources |
//!
//! Every hit honors the same `// lint: <reason>` waiver contract as the
//! string rules, and consumed waivers feed the stale-waiver wall.

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::{Delim, LexError, Lexed, Tok, Token};
use crate::{FileKind, Finding, ScanReport, Suppression};

/// One node of the token tree: a leaf token or a delimited group.
#[derive(Clone, Debug)]
pub enum Tt {
    /// A non-delimiter token.
    Leaf(Token),
    /// A `(…)` / `[…]` / `{…}` group.
    Group {
        /// Delimiter kind.
        delim: Delim,
        /// Line of the opening delimiter.
        open_line: u32,
        /// Children.
        tts: Vec<Tt>,
    },
}

impl Tt {
    fn line(&self) -> u32 {
        match self {
            Tt::Leaf(t) => t.line,
            Tt::Group { open_line, .. } => *open_line,
        }
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self, Tt::Leaf(Token { tok: Tok::Punct(p), .. }) if *p == c)
    }

    fn ident(&self) -> Option<&str> {
        match self {
            Tt::Leaf(Token {
                tok: Tok::Ident(s), ..
            }) => Some(s.as_str()),
            _ => None,
        }
    }

    fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// Build nested token trees from a flat token stream. Unbalanced
/// delimiters are a [`LexError`] (the caller falls back to string rules).
pub fn build_trees(tokens: &[Token]) -> Result<Vec<Tt>, LexError> {
    let mut stack: Vec<(Delim, u32, Vec<Tt>)> = Vec::new();
    let mut top: Vec<Tt> = Vec::new();
    for t in tokens {
        match &t.tok {
            Tok::Open(d) => {
                stack.push((*d, t.line, std::mem::take(&mut top)));
            }
            Tok::Close(d) => match stack.pop() {
                Some((od, oline, parent)) if od == *d => {
                    let group = Tt::Group {
                        delim: od,
                        open_line: oline,
                        tts: std::mem::replace(&mut top, parent),
                    };
                    top.push(group);
                }
                _ => {
                    return Err(LexError {
                        line: t.line,
                        msg: "unbalanced delimiter".into(),
                    })
                }
            },
            _ => top.push(Tt::Leaf(t.clone())),
        }
    }
    if let Some((_, line, _)) = stack.pop() {
        return Err(LexError {
            line,
            msg: "unclosed delimiter".into(),
        });
    }
    Ok(top)
}

/// Collect every identifier in a subtree, in order.
fn idents_rec(tts: &[Tt], out: &mut Vec<String>) {
    for tt in tts {
        match tt {
            Tt::Leaf(Token {
                tok: Tok::Ident(s), ..
            }) => out.push(s.clone()),
            Tt::Group { tts, .. } => idents_rec(tts, out),
            _ => {}
        }
    }
}

/// Interior-mutability seed types: shared-mutable cells whose cross-thread
/// update order is scheduler-dependent.
fn is_im_seed(name: &str) -> bool {
    matches!(
        name,
        "Mutex"
            | "RwLock"
            | "RefCell"
            | "Cell"
            | "OnceCell"
            | "OnceLock"
            | "LazyLock"
            | "UnsafeCell"
    ) || name.starts_with("Atomic")
}

/// Per-crate item/fn index, built once from every parsed library source of
/// the crate. This is what lets the analyzer see through renames and
/// across files — exactly what the line scanner cannot.
#[derive(Clone, Debug, Default)]
pub struct CrateIndex {
    /// Names that resolve (possibly through chains of `use … as` renames
    /// and `type` aliases, across files) to `HashMap` or `HashSet`.
    pub hasher_aliases: BTreeMap<String, &'static str>,
    /// Crate-local types (structs/enums/aliases) that transitively contain
    /// interior-mutable state.
    pub interior_mutable: BTreeSet<String>,
    /// `static` items whose type is interior-mutable.
    pub im_statics: BTreeSet<String>,
}

impl CrateIndex {
    /// Whether a type-ident set names interior-mutable state (seed types
    /// or indexed crate-local wrappers).
    fn type_idents_interior_mutable(&self, idents: &[String]) -> bool {
        idents
            .iter()
            .any(|s| is_im_seed(s) || self.interior_mutable.contains(s))
    }
}

/// Build the [`CrateIndex`] from `(rel, trees)` pairs — every parsed
/// library source file of one crate.
pub fn index_crate(files: &[(&str, &[Tt])]) -> CrateIndex {
    // Raw declarations, resolved to fixpoint afterwards so chains
    // (`use a::HashMap as M; type N = M<u32, u32>;`) and cross-file
    // ordering don't matter.
    let mut renames: Vec<(String, String)> = Vec::new(); // alias -> target segment
    let mut type_rhs: Vec<(String, Vec<String>)> = Vec::new(); // alias -> rhs idents
    let mut field_idents: Vec<(String, Vec<String>)> = Vec::new(); // struct/enum -> body idents
    let mut statics: Vec<(String, Vec<String>)> = Vec::new(); // static -> type idents

    for (_, trees) in files {
        collect_items(
            trees,
            &mut renames,
            &mut type_rhs,
            &mut field_idents,
            &mut statics,
        );
    }

    let mut idx = CrateIndex::default();
    // Fixpoint over hasher aliases: a rename or type alias whose target is
    // HashMap/HashSet (or an already-known alias of one).
    loop {
        let mut changed = false;
        for (alias, target) in &renames {
            if idx.hasher_aliases.contains_key(alias) {
                continue;
            }
            let base = match target.as_str() {
                "HashMap" => Some("HashMap"),
                "HashSet" => Some("HashSet"),
                other => idx.hasher_aliases.get(other).copied(),
            };
            if let Some(base) = base {
                idx.hasher_aliases.insert(alias.clone(), base);
                changed = true;
            }
        }
        for (alias, rhs) in &type_rhs {
            if idx.hasher_aliases.contains_key(alias) {
                continue;
            }
            let base = rhs.iter().find_map(|s| match s.as_str() {
                "HashMap" => Some("HashMap"),
                "HashSet" => Some("HashSet"),
                other => idx.hasher_aliases.get(other).copied(),
            });
            if let Some(base) = base {
                idx.hasher_aliases.insert(alias.clone(), base);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Fixpoint over interior-mutable wrappers.
    loop {
        let mut changed = false;
        for (name, body) in field_idents.iter().chain(type_rhs.iter()) {
            if idx.interior_mutable.contains(name) {
                continue;
            }
            if body
                .iter()
                .any(|s| is_im_seed(s) || idx.interior_mutable.contains(s))
            {
                idx.interior_mutable.insert(name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (name, ty) in &statics {
        if idx.type_idents_interior_mutable(ty) {
            idx.im_statics.insert(name.clone());
        }
    }
    idx
}

/// Recursive item collector for [`index_crate`].
fn collect_items(
    tts: &[Tt],
    renames: &mut Vec<(String, String)>,
    type_rhs: &mut Vec<(String, Vec<String>)>,
    field_idents: &mut Vec<(String, Vec<String>)>,
    statics: &mut Vec<(String, Vec<String>)>,
) {
    let mut i = 0;
    while i < tts.len() {
        match &tts[i] {
            t if t.is_ident("use") => {
                let end = stmt_end(tts, i);
                collect_use_tree(&tts[i + 1..end], None, renames);
                i = end;
                continue;
            }
            t if t.is_ident("type") => {
                // `type Name<…> = RHS;`
                if let Some(name) = tts.get(i + 1).and_then(|t| t.ident()) {
                    let end = stmt_end(tts, i);
                    if let Some(eq) = (i + 2..end).find(|&j| tts[j].is_punct('=')) {
                        let mut rhs = Vec::new();
                        idents_rec(&tts[eq + 1..end], &mut rhs);
                        type_rhs.push((name.to_string(), rhs));
                    }
                    i = end;
                    continue;
                }
            }
            t if t.is_ident("struct") || t.is_ident("enum") || t.is_ident("union") => {
                if let Some(name) = tts.get(i + 1).and_then(|t| t.ident()) {
                    // Body is the next brace or paren group before `;`.
                    let end = item_end(tts, i);
                    let mut body = Vec::new();
                    for tt in &tts[i + 2..end] {
                        if let Tt::Group { tts, .. } = tt {
                            idents_rec(tts, &mut body);
                        }
                    }
                    field_idents.push((name.to_string(), body));
                    i = end;
                    continue;
                }
            }
            t if t.is_ident("static") => {
                // `static NAME: Type = …;` (skip `static mut` — it has its
                // own rule already; still index it for capture purposes).
                let mut j = i + 1;
                if tts.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = tts.get(j).and_then(|t| t.ident()) {
                    let end = stmt_end(tts, i);
                    let ty_end = (j + 1..end).find(|&k| tts[k].is_punct('=')).unwrap_or(end);
                    let mut ty = Vec::new();
                    idents_rec(&tts[j + 1..ty_end], &mut ty);
                    statics.push((name.to_string(), ty));
                    i = end;
                    continue;
                }
            }
            Tt::Group { tts: inner, .. } => {
                collect_items(inner, renames, type_rhs, field_idents, statics);
            }
            _ => {}
        }
        i += 1;
    }
}

/// Index just past the terminating `;` of the statement starting at `i`.
fn stmt_end(tts: &[Tt], i: usize) -> usize {
    (i..tts.len())
        .find(|&j| tts[j].is_punct(';'))
        .map(|j| j + 1)
        .unwrap_or(tts.len())
}

/// End of an item: past its brace group or terminating `;`.
fn item_end(tts: &[Tt], i: usize) -> usize {
    for j in i..tts.len() {
        match &tts[j] {
            Tt::Group {
                delim: Delim::Brace,
                ..
            } => return j + 1,
            t if t.is_punct(';') => return j + 1,
            _ => {}
        }
    }
    tts.len()
}

/// Walk a `use` tree, recording `alias -> final segment` renames.
/// `last` carries the most recent path segment seen at this level.
fn collect_use_tree(tts: &[Tt], last: Option<&str>, renames: &mut Vec<(String, String)>) {
    let mut last: Option<String> = last.map(|s| s.to_string());
    let mut i = 0;
    while i < tts.len() {
        match &tts[i] {
            t if t.is_ident("as") => {
                if let (Some(target), Some(alias)) =
                    (last.clone(), tts.get(i + 1).and_then(|t| t.ident()))
                {
                    renames.push((alias.to_string(), target));
                }
                i += 2;
                continue;
            }
            Tt::Group { tts: inner, .. } => {
                collect_use_tree(inner, last.as_deref(), renames);
            }
            Tt::Leaf(Token {
                tok: Tok::Ident(s), ..
            }) => last = Some(s.clone()),
            Tt::Leaf(Token {
                tok: Tok::Punct(','),
                ..
            }) => last = None,
            _ => {}
        }
        i += 1;
    }
}

/// Result of the AST rule pass on one file.
#[derive(Clone, Debug, Default)]
pub struct AstScan {
    /// Findings and suppressions, in the shared report shape.
    pub report: ScanReport,
    /// `// lint:` comment lines consumed by suppressions here.
    pub consumed: BTreeSet<usize>,
}

/// Rayon parallel-iterator introductions.
fn is_par_intro(name: &str) -> bool {
    name == "into_par_iter"
        || name == "par_bridge"
        || (name.starts_with("par_") && name != "par_shards")
}

/// Mutating methods of interior-mutable cells — a call through a captured
/// binding is shared mutation from inside the pool.
fn is_im_method(name: &str) -> bool {
    matches!(
        name,
        "lock"
            | "try_lock"
            | "borrow_mut"
            | "fetch_add"
            | "fetch_sub"
            | "fetch_and"
            | "fetch_or"
            | "fetch_xor"
            | "compare_exchange"
            | "compare_exchange_weak"
            | "get_or_init"
            | "get_or_try_init"
    )
}

/// A lexical scope for capture analysis.
#[derive(Debug, Default)]
struct Scope {
    names: BTreeSet<String>,
    /// The parameter scope of the *outermost* Rayon closure: names bound
    /// at or above it are shard-owned; names below it are captures.
    par_boundary: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct Ctx {
    in_test: bool,
    /// Inside the body of a closure passed to a parallel-chain call.
    in_par_closure: bool,
    /// Directly inside the argument group of a parallel-chain call
    /// (closures opening here are Rayon closures).
    par_call_args: bool,
}

/// The AST rule engine for one file.
struct Walker<'a> {
    rel: &'a str,
    lines: Vec<&'a str>,
    lexed: &'a Lexed,
    index: &'a CrateIndex,
    /// Scope for `rayon-capture-audit` / `float-order-in-par`.
    par_crate: bool,
    /// Scope for `panic-path-index`.
    hot_crate: bool,
    /// Enclosing-fn parameter types (idents), pushed per `fn`.
    fn_params: Vec<BTreeMap<String, Vec<String>>>,
    scopes: Vec<Scope>,
    out: AstScan,
}

impl<'a> Walker<'a> {
    fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    fn hit(&mut self, rule: &'static str, line: u32) {
        match self.lexed.waiver_for(line) {
            Some((wline, justification)) => {
                self.out.consumed.insert(wline as usize);
                self.out.report.suppressed.push(Suppression {
                    rule,
                    file: self.rel.to_string(),
                    line: line as usize,
                    justification: justification.to_string(),
                });
            }
            None => self.out.report.findings.push(Finding {
                rule,
                file: self.rel.to_string(),
                line: line as usize,
                excerpt: self.excerpt(line),
            }),
        }
    }

    /// Whether `name` is bound at or inside the outermost Rayon closure.
    fn is_par_local(&self, name: &str) -> bool {
        for s in self.scopes.iter().rev() {
            if s.names.contains(name) {
                return true;
            }
            if s.par_boundary {
                return false;
            }
        }
        false
    }

    fn bind(&mut self, name: &str) {
        if let Some(s) = self.scopes.last_mut() {
            s.names.insert(name.to_string());
        }
    }

    /// Type idents of an enclosing-fn parameter named `name`, if any.
    fn param_type(&self, name: &str) -> Option<&Vec<String>> {
        self.fn_params.iter().rev().find_map(|m| m.get(name))
    }

    /// Walk one token sequence (an item body, group contents, …).
    fn walk(&mut self, tts: &[Tt], ctx: Ctx) {
        let mut pending_test = false;
        let mut par_active = false;
        let mut i = 0;
        while i < tts.len() {
            let in_test = ctx.in_test || pending_test;
            match &tts[i] {
                // ---- attributes: detect #[cfg(test)], then skip. ----
                t if t.is_punct('#') => {
                    let mut j = i + 1;
                    if tts.get(j).is_some_and(|t| t.is_punct('!')) {
                        j += 1;
                    }
                    if let Some(Tt::Group {
                        delim: Delim::Bracket,
                        tts: attr,
                        ..
                    }) = tts.get(j)
                    {
                        if attr_gates_test(attr) {
                            pending_test = true;
                        }
                        i = j + 1;
                        continue;
                    }
                }
                // ---- statements the rules skip: use / type aliases. ----
                t if t.is_ident("use") || t.is_ident("type") => {
                    i = stmt_end(tts, i);
                    continue;
                }
                // ---- fn items: capture the param type map. ----
                t if t.is_ident("fn") => {
                    if let Some(end) = self.walk_fn(tts, i, Ctx { in_test, ..ctx }) {
                        pending_test = false;
                        i = end;
                        continue;
                    }
                }
                // ---- let / for bindings. ----
                t if t.is_ident("let") => {
                    let stop = (i + 1..tts.len())
                        .find(|&j| tts[j].is_punct('=') || tts[j].is_punct(';'))
                        .unwrap_or(tts.len());
                    for tt in &tts[i + 1..stop] {
                        if let Some(name) = tt.ident() {
                            self.bind(name);
                        }
                    }
                    i += 1;
                    continue;
                }
                t if t.is_ident("for") => {
                    let stop = (i + 1..tts.len())
                        .find(|&j| {
                            tts[j].is_ident("in")
                                || tts[j].is_punct(';')
                                || matches!(
                                    tts[j],
                                    Tt::Group {
                                        delim: Delim::Brace,
                                        ..
                                    }
                                )
                        })
                        .unwrap_or(tts.len());
                    for tt in &tts[i + 1..stop] {
                        if let Some(name) = tt.ident() {
                            self.bind(name);
                        }
                    }
                    i += 1;
                    continue;
                }
                _ => {}
            }

            // ---- closures. ----
            if let Some((params_end, body_end)) = closure_at(tts, i) {
                let is_par_closure = self.par_crate && (ctx.par_call_args || ctx.in_par_closure);
                self.scopes.push(Scope {
                    names: BTreeSet::new(),
                    par_boundary: is_par_closure && !ctx.in_par_closure,
                });
                let pstart = i + 1;
                for tt in &tts[pstart..params_end] {
                    if let Some(name) = tt.ident() {
                        self.bind(name);
                    }
                }
                let body_ctx = Ctx {
                    in_test,
                    in_par_closure: ctx.in_par_closure || is_par_closure,
                    par_call_args: false,
                };
                self.walk(&tts[params_end + 1..body_end], body_ctx);
                self.scopes.pop();
                i = body_end;
                continue;
            }

            // ---- method chains: par context and call-site rules. ----
            if tts[i].is_punct('.') {
                if let Some(name) = tts.get(i + 1).and_then(|t| t.ident()) {
                    // Optional turbofish between name and args group.
                    let mut j = i + 2;
                    let turbo_start = j;
                    if tts.get(j).is_some_and(|t| {
                        matches!(
                            t,
                            Tt::Leaf(Token {
                                tok: Tok::PathSep,
                                ..
                            })
                        )
                    }) {
                        j += 1;
                        let mut depth = 0i32;
                        while j < tts.len() {
                            if tts[j].is_punct('<') {
                                depth += 1;
                            } else if tts[j].is_punct('>') {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                    let args = match tts.get(j) {
                        Some(Tt::Group {
                            delim: Delim::Paren,
                            tts: args,
                            open_line,
                        }) => Some((args.as_slice(), *open_line)),
                        _ => None,
                    };
                    if let Some((args, line)) = args {
                        let was_par = par_active;
                        if is_par_intro(name) {
                            par_active = true;
                        }
                        if name == "collect" {
                            par_active = false;
                        }
                        // float-order-in-par: a parallel reduction whose
                        // operands are floats.
                        if was_par
                            && self.par_crate
                            && !in_test
                            && matches!(name, "reduce" | "fold" | "sum" | "product")
                        {
                            let mut toks: Vec<&Tt> = tts[turbo_start..j].iter().collect();
                            toks.extend(args.iter());
                            if tokens_mention_float(&toks) {
                                self.hit("float-order-in-par", line);
                            }
                        }
                        // rayon-capture-audit, method form: mutation of a
                        // captured cell through `.lock()` & friends.
                        if ctx.in_par_closure && self.par_crate && !in_test && is_im_method(name) {
                            if let Some(root) = chain_root(tts, i) {
                                if !self.is_par_local(&root) {
                                    self.hit("rayon-capture-audit", line);
                                }
                            }
                        }
                        // Walk the args: closures inside a par-chain call
                        // are Rayon closures.
                        self.walk(
                            args,
                            Ctx {
                                in_test,
                                in_par_closure: ctx.in_par_closure,
                                par_call_args: was_par || par_active || ctx.in_par_closure,
                            },
                        );
                        i = j + 1;
                        continue;
                    }
                }
            }

            // ---- statement separators reset the chain context. ----
            if tts[i].is_punct(';') || tts[i].is_punct(',') {
                par_active = false;
            }

            // ---- `as` casts: lossy-id-cast. ----
            if tts[i].is_ident("as") && i > 0 {
                if let Some(target) = tts.get(i + 1).and_then(|t| t.ident()) {
                    let narrow32 = matches!(target, "u32" | "i32" | "u16" | "i16" | "u8" | "i8");
                    let narrow16 = matches!(target, "u16" | "i16" | "u8" | "i8");
                    if narrow32 && !in_test {
                        let src = cast_source_idents(tts, i);
                        let round_src = src.iter().any(|s| is_round_ident(s));
                        let id_src = src.iter().any(|s| is_id_ident(s));
                        if round_src || (narrow16 && id_src) {
                            self.hit("lossy-id-cast", tts[i].line());
                        }
                    }
                }
            }

            // ---- postfix indexing: panic-path-index. ----
            if self.hot_crate && !in_test && i > 0 {
                if let Tt::Group {
                    delim: Delim::Bracket,
                    tts: idx,
                    open_line,
                } = &tts[i]
                {
                    let prev_postfix = match &tts[i - 1] {
                        t if t.ident().is_some() => !is_keywordish(tts[i - 1].ident().unwrap()),
                        Tt::Group { delim, .. } => *delim != Delim::Brace,
                        t => t.is_punct('?'),
                    };
                    let after_attr_or_macro =
                        tts.get(i.wrapping_sub(2)).is_some_and(|t| t.is_punct('#'))
                            || tts[i - 1].is_punct('!');
                    if prev_postfix && !after_attr_or_macro && contains_minus(idx) {
                        self.hit("panic-path-index", *open_line);
                    }
                }
            }

            // ---- bare identifiers: alias + capture rules. ----
            if let Some(name) = tts[i].ident() {
                if !in_test {
                    if let Some(base) = self.index.hasher_aliases.get(name) {
                        let base = *base;
                        let _ = base;
                        self.hit("alias-evading-hasher", tts[i].line());
                    }
                    if ctx.in_par_closure && self.par_crate {
                        // &mut capture of a non-shard-owned binding.
                        if name == "mut" && i > 0 && tts[i - 1].is_punct('&') {
                            if let Some(target) = tts.get(i + 1).and_then(|t| t.ident()) {
                                if !self.is_par_local(target) {
                                    self.hit("rayon-capture-audit", tts[i].line());
                                }
                            }
                        }
                        // Captured interior-mutable static or IM-typed
                        // enclosing-fn parameter.
                        let is_shadowed = self.is_par_local(name);
                        if !is_shadowed {
                            if self.index.im_statics.contains(name) {
                                self.hit("rayon-capture-audit", tts[i].line());
                            } else if self
                                .param_type(name)
                                .is_some_and(|ty| self.index.type_idents_interior_mutable(ty))
                            {
                                self.hit("rayon-capture-audit", tts[i].line());
                            }
                        }
                    }
                }
            }

            // ---- recurse into remaining groups. ----
            if let Tt::Group {
                delim, tts: inner, ..
            } = &tts[i]
            {
                let braces = *delim == Delim::Brace;
                if braces {
                    self.scopes.push(Scope::default());
                }
                let inner_ctx = Ctx {
                    in_test: in_test && braces || ctx.in_test || pending_test,
                    in_par_closure: ctx.in_par_closure,
                    // A paren group directly in a par chain is handled in
                    // the method-chain arm above; other groups do not make
                    // their closures parallel.
                    par_call_args: false,
                };
                self.walk(inner, inner_ctx);
                if braces {
                    self.scopes.pop();
                    if pending_test {
                        pending_test = false;
                    }
                }
            }
            if tts[i].is_punct(';') && pending_test {
                pending_test = false;
            }
            i += 1;
        }
    }

    /// Walk a `fn` item starting at `tts[i] == fn`; returns the index just
    /// past the item, or `None` if the shape is unexpected.
    fn walk_fn(&mut self, tts: &[Tt], i: usize, ctx: Ctx) -> Option<usize> {
        // fn name <generics>? (params) -> ret where … { body }
        let params_at = (i + 1..tts.len()).find(|&j| {
            matches!(
                tts[j],
                Tt::Group {
                    delim: Delim::Paren,
                    ..
                }
            )
        })?;
        let Tt::Group { tts: params, .. } = &tts[params_at] else {
            return None;
        };
        let end = item_end(tts, params_at);
        // Param/return types are not part of the body walk, but an aliased
        // hasher in a signature is still a use of it — check them here
        // (stop before the body group: the body walk covers that).
        let sig_end = match tts.get(end - 1) {
            Some(Tt::Group {
                delim: Delim::Brace,
                ..
            }) => end - 1,
            _ => end,
        };
        if !ctx.in_test {
            let mut sig_hits = Vec::new();
            alias_idents(&tts[params_at..sig_end], self.index, &mut sig_hits);
            for line in sig_hits {
                self.hit("alias-evading-hasher", line);
            }
        }
        let mut map = BTreeMap::new();
        for part in split_top(params, ',') {
            // `name: Type` / `mut name: Type` / pattern params: take the
            // idents before the first `:` as names, the rest as the type.
            let colon = part.iter().position(|t| t.is_punct(':'));
            let (names, ty) = match colon {
                Some(c) => (&part[..c], &part[c + 1..]),
                None => (part.as_slice(), &part[0..0]),
            };
            let mut ty_idents = Vec::new();
            for tt in ty {
                collect_type_idents(tt, &mut ty_idents);
            }
            for tt in names {
                if let Some(name) = tt.ident() {
                    if name != "mut" && name != "ref" {
                        map.insert(name.to_string(), ty_idents.clone());
                    }
                }
            }
        }
        // Body (if not a trait-decl `;`).
        if let Some(Tt::Group {
            delim: Delim::Brace,
            tts: body,
            ..
        }) = tts.get(end - 1)
        {
            self.fn_params.push(map.clone());
            self.scopes.push(Scope {
                names: map.keys().cloned().collect(),
                par_boundary: false,
            });
            self.walk(
                body,
                Ctx {
                    in_par_closure: false,
                    par_call_args: false,
                    ..ctx
                },
            );
            self.scopes.pop();
            self.fn_params.pop();
        }
        Some(end)
    }
}

/// Collect the lines of every leaf identifier (recursively) that resolves
/// through the crate index to `HashMap`/`HashSet`.
fn alias_idents(tts: &[Tt], index: &CrateIndex, out: &mut Vec<u32>) {
    for tt in tts {
        match tt {
            Tt::Leaf(_) => {
                if let Some(name) = tt.ident() {
                    if index.hasher_aliases.contains_key(name) {
                        out.push(tt.line());
                    }
                }
            }
            Tt::Group { tts: inner, .. } => alias_idents(inner, index, out),
        }
    }
}

/// Split a token-tree list on `sep` at the top level, tracking `<`/`>`
/// depth so commas inside generics (`BTreeMap<u32, u32>`) don't split.
/// (`->` lexes as [`Tok::RArrow`], so return arrows don't disturb depth.)
fn split_top(tts: &[Tt], sep: char) -> Vec<Vec<Tt>> {
    let mut parts = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for tt in tts {
        if tt.is_punct('<') {
            angle += 1;
        } else if tt.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && tt.is_punct(sep) {
            parts.push(std::mem::take(&mut cur));
            continue;
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

fn collect_type_idents(tt: &Tt, out: &mut Vec<String>) {
    match tt {
        Tt::Leaf(Token {
            tok: Tok::Ident(s), ..
        }) => out.push(s.clone()),
        Tt::Group { tts, .. } => idents_rec(tts, out),
        _ => {}
    }
}

/// Does `#[…]` gate a test build? Matches `cfg(test)` and
/// `cfg(all(test, …))` precisely — *not* `cfg(not(test))`.
fn attr_gates_test(attr: &[Tt]) -> bool {
    if !attr.first().is_some_and(|t| t.is_ident("cfg")) {
        return false;
    }
    let Some(Tt::Group { tts: args, .. }) = attr.get(1) else {
        return false;
    };
    match args.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("all") => match args.get(1) {
            Some(Tt::Group { tts: inner, .. }) => inner.first().is_some_and(|t| t.is_ident("test")),
            _ => false,
        },
        _ => false,
    }
}

/// Keywords that can directly precede a `[`-group without it being an
/// index expression (`return [..]`, `break [..]`, …).
fn is_keywordish(name: &str) -> bool {
    matches!(
        name,
        "return"
            | "break"
            | "in"
            | "if"
            | "else"
            | "match"
            | "move"
            | "mut"
            | "ref"
            | "as"
            | "let"
            | "where"
            | "impl"
            | "dyn"
            | "const"
            | "static"
            | "for"
            | "while"
            | "loop"
    )
}

/// Detect a closure starting at `tts[i]` (a `|`): returns
/// `(params_end, body_end)` — indices of the closing `|` and one past the
/// body — or `None` if this `|` is a binary operator.
fn closure_at(tts: &[Tt], i: usize) -> Option<(usize, usize)> {
    if !tts[i].is_punct('|') {
        return None;
    }
    let starts_closure = match i.checked_sub(1).map(|p| &tts[p]) {
        None => true,
        Some(prev) => {
            prev.is_punct(',')
                || prev.is_punct('=')
                || prev.is_punct('(')
                || prev.is_ident("move")
                || prev.is_ident("return")
                || prev.is_ident("else")
                || matches!(
                    prev,
                    Tt::Leaf(Token {
                        tok: Tok::FatArrow,
                        ..
                    })
                )
        }
    };
    if !starts_closure {
        return None;
    }
    // Find the closing `|` at this level.
    let params_end = (i + 1..tts.len()).find(|&j| tts[j].is_punct('|'))?;
    // Body: one group, or a token run to the next top-level `,`.
    let body_start = params_end + 1;
    if body_start >= tts.len() {
        return None;
    }
    let body_end = match &tts[body_start] {
        Tt::Group { .. }
            if body_start + 1 >= tts.len()
                || tts[body_start + 1].is_punct(',')
                || tts[body_start + 1].is_punct(';') =>
        {
            body_start + 1
        }
        _ => (body_start..tts.len())
            .find(|&j| tts[j].is_punct(',') || tts[j].is_punct(';'))
            .unwrap_or(tts.len()),
    };
    Some((params_end, body_end))
}

/// Do these tokens (turbofish + call args of a reduction) mention floats?
fn tokens_mention_float(toks: &[&Tt]) -> bool {
    fn rec(tt: &Tt) -> bool {
        match tt {
            Tt::Leaf(Token {
                tok: Tok::Ident(s), ..
            }) => s == "f32" || s == "f64",
            Tt::Leaf(Token {
                tok: Tok::LitNum { float },
                ..
            }) => *float,
            Tt::Group { tts, .. } => tts.iter().any(rec),
            _ => false,
        }
    }
    toks.iter().any(|t| rec(t))
}

/// Root identifier of the method chain whose `.` sits at `tts[dot]`.
fn chain_root(tts: &[Tt], dot: usize) -> Option<String> {
    let mut j = dot;
    let mut root = None;
    while j > 0 {
        j -= 1;
        match &tts[j] {
            Tt::Leaf(Token {
                tok: Tok::Ident(s), ..
            }) => {
                root = Some(s.clone());
                let cont = j > 0
                    && (tts[j - 1].is_punct('.')
                        || matches!(
                            tts[j - 1],
                            Tt::Leaf(Token {
                                tok: Tok::PathSep,
                                ..
                            })
                        ));
                if !cont {
                    break;
                }
            }
            Tt::Leaf(Token {
                tok: Tok::LitNum { .. },
                ..
            }) if j > 0 && tts[j - 1].is_punct('.') => {}
            Tt::Group {
                delim: Delim::Paren | Delim::Bracket,
                ..
            } => {}
            t if t.is_punct('.') || t.is_punct('?') => {}
            Tt::Leaf(Token {
                tok: Tok::PathSep, ..
            }) => {}
            _ => break,
        }
    }
    root
}

/// Identifiers of the primary expression being cast at `tts[as_at]`.
fn cast_source_idents(tts: &[Tt], as_at: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = as_at;
    while j > 0 {
        j -= 1;
        match &tts[j] {
            Tt::Group {
                delim: Delim::Paren | Delim::Bracket,
                tts: inner,
                ..
            } => {
                idents_rec(inner, &mut out);
                // A call's group continues the chain to its callee; a
                // bare parenthesized expression ends it.
                let is_call = j > 0
                    && (tts[j - 1].ident().is_some()
                        || tts[j - 1].is_punct('.')
                        || matches!(
                            tts[j - 1],
                            Tt::Leaf(Token {
                                tok: Tok::PathSep,
                                ..
                            })
                        ));
                if !is_call {
                    break;
                }
            }
            Tt::Leaf(Token {
                tok: Tok::Ident(s), ..
            }) => {
                if s == "as" || is_keywordish(s) {
                    break;
                }
                out.push(s.clone());
                let cont = j > 0
                    && (tts[j - 1].is_punct('.')
                        || matches!(
                            tts[j - 1],
                            Tt::Leaf(Token {
                                tok: Tok::PathSep,
                                ..
                            })
                        ));
                if !cont {
                    break;
                }
            }
            Tt::Leaf(Token {
                tok: Tok::LitNum { .. },
                ..
            }) if j > 0 && tts[j - 1].is_punct('.') => {}
            t if t.is_punct('.') || t.is_punct('?') => {}
            Tt::Leaf(Token {
                tok: Tok::PathSep, ..
            }) => {}
            _ => break,
        }
    }
    out
}

/// Any top-level or nested `-` inside an index expression (`->`/`..` lex
/// as their own tokens, so arrows and ranges never match).
fn contains_minus(tts: &[Tt]) -> bool {
    tts.iter().any(|tt| match tt {
        t if t.is_punct('-') => true,
        Tt::Group { tts, .. } => contains_minus(tts),
        _ => false,
    })
}

/// `Round`-typed (u64) value names: casting below 64 bits is lossy.
fn is_round_ident(s: &str) -> bool {
    s == "round"
        || s == "arrival"
        || s == "Round"
        || s.ends_with("_round")
        || s.starts_with("round_")
}

/// Id/slot-typed (u32) value names: casting below 32 bits is lossy.
fn is_id_ident(s: &str) -> bool {
    s == "id"
        || s == "slot"
        || s == "RequestId"
        || s == "ResourceId"
        || s.ends_with("_id")
        || s.ends_with("_slot")
}

/// Crates whose parallel engines the capture/float rules guard.
fn in_par_crates(rel: &str) -> bool {
    rel.starts_with("crates/sim/")
        || rel.starts_with("crates/offline/")
        || rel.starts_with("crates/matching/")
}

/// Crates whose library sources count as panic-sensitive hot paths.
fn in_hot_crates(rel: &str) -> bool {
    rel.starts_with("crates/core/")
        || rel.starts_with("crates/matching/")
        || rel.starts_with("crates/sim/")
        || rel.starts_with("crates/offline/")
}

/// Run the five AST rules over one parsed library source file.
pub fn ast_scan(
    rel: &str,
    text: &str,
    kind: FileKind,
    trees: &[Tt],
    lexed: &Lexed,
    index: &CrateIndex,
) -> AstScan {
    if kind != FileKind::LibSource {
        return AstScan::default();
    }
    let mut w = Walker {
        rel,
        lines: text.lines().collect(),
        lexed,
        index,
        par_crate: in_par_crates(rel),
        hot_crate: in_hot_crates(rel),
        fn_params: Vec::new(),
        scopes: vec![Scope::default()],
        out: AstScan::default(),
    };
    w.walk(trees, Ctx::default());
    let mut out = w.out;
    out.report
        .findings
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn scan(rel: &str, src: &str) -> AstScan {
        let lexed = lex(src).expect("lex");
        let trees = build_trees(&lexed.tokens).expect("trees");
        let index = index_crate(&[(rel, trees.as_slice())]);
        ast_scan(rel, src, FileKind::LibSource, &trees, &lexed, &index)
    }

    fn rules(scan: &AstScan) -> Vec<&'static str> {
        scan.report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn use_rename_indexed_and_uses_flagged() {
        let src = "use std::collections::HashMap as FastMap; // lint: t\n\
                   fn f() { let m: FastMap<u32, u32> = FastMap::new(); }\n";
        let s = scan("crates/core/src/x.rs", src);
        assert_eq!(
            rules(&s),
            vec!["alias-evading-hasher", "alias-evading-hasher"]
        );
    }

    #[test]
    fn type_alias_chain_resolves_to_fixpoint() {
        let src = "use std::collections::HashSet as S0; // lint: t\n\
                   type S1 = S0<u64>; // lint: t\n\
                   fn g(x: S1) {}\n";
        let s = scan("crates/core/src/x.rs", src);
        assert_eq!(rules(&s), vec!["alias-evading-hasher"]);
        assert_eq!(s.report.findings[0].line, 3);
    }

    #[test]
    fn mutex_capture_in_par_closure_flagged() {
        let src = "use std::sync::Mutex;\n\
                   fn f(shared: &Mutex<Vec<u64>>, xs: &[u64]) {\n\
                       xs.par_iter().for_each(|x| {\n\
                           shared.lock().unwrap().push(*x);\n\
                       });\n\
                   }\n";
        let s = scan("crates/sim/src/x.rs", src);
        assert!(rules(&s).contains(&"rayon-capture-audit"), "{s:?}");
    }

    #[test]
    fn shard_owned_receiver_is_exempt() {
        let src = "fn f(groups: &mut Vec<G>) {\n\
                       groups.par_iter_mut().for_each(|g| { g.step(); });\n\
                       let done: Vec<G> = std::mem::take(groups)\n\
                           .into_par_iter()\n\
                           .map(|mut g| { g.step(); g })\n\
                           .collect();\n\
                   }\n";
        let s = scan("crates/sim/src/x.rs", src);
        assert!(s.report.findings.is_empty(), "{:?}", s.report.findings);
    }

    #[test]
    fn mut_capture_in_par_closure_flagged() {
        let src = "fn f(xs: &[u64]) {\n\
                       let mut total = 0u64;\n\
                       xs.par_iter().for_each(|x| push(&mut total, *x));\n\
                   }\n";
        let s = scan("crates/offline/src/x.rs", src);
        assert_eq!(rules(&s), vec!["rayon-capture-audit"]);
    }

    #[test]
    fn im_struct_param_capture_flagged_via_index() {
        let src = "pub struct Cache { inner: Mutex<u64> }\n\
                   fn f(cache: &Cache, xs: &[u64]) {\n\
                       xs.par_iter().map(|x| cache.probe(*x)).collect::<Vec<_>>();\n\
                   }\n";
        let s = scan("crates/sim/src/x.rs", src);
        assert_eq!(rules(&s), vec!["rayon-capture-audit"]);
    }

    #[test]
    fn float_reduce_in_par_chain_flagged() {
        let src = "fn f(xs: &[f64]) -> f64 {\n\
                       xs.par_iter().map(|x| x * 2.0).reduce(|| 0.0, |a, b| a + b)\n\
                   }\n";
        let s = scan("crates/offline/src/x.rs", src);
        assert!(rules(&s).contains(&"float-order-in-par"), "{s:?}");
    }

    #[test]
    fn integer_reduce_has_no_float_finding() {
        let src = "fn f(xs: &[u64]) -> u64 {\n\
                       xs.par_iter().map(|x| x * 2).reduce(|| 0, |a, b| a + b)\n\
                   }\n";
        let s = scan("crates/offline/src/x.rs", src);
        assert!(!rules(&s).contains(&"float-order-in-par"), "{s:?}");
    }

    #[test]
    fn lossy_round_cast_flagged_and_widening_ignored() {
        let src = "fn f(round: u64, n: u64, res: u32) -> u32 {\n\
                       let wide = round * n + res as u64;\n\
                       (round * n) as u32\n\
                   }\n";
        let s = scan("crates/core/src/x.rs", src);
        assert_eq!(rules(&s), vec!["lossy-id-cast"]);
        assert_eq!(s.report.findings[0].line, 3);
    }

    #[test]
    fn id_cast_to_u16_flagged_but_u32_ok() {
        let src = "fn f(req_id: u32) { let a = req_id as u16; let b = req_id as u64; }\n";
        let s = scan("crates/core/src/x.rs", src);
        assert_eq!(rules(&s), vec!["lossy-id-cast"]);
    }

    #[test]
    fn subtraction_index_flagged_outside_tests() {
        let src = "fn f(xs: &[u64], i: usize) -> u64 { xs[i - 1] }\n\
                   #[cfg(test)]\n\
                   mod tests { fn g(xs: &[u64], i: usize) -> u64 { xs[i - 1] } }\n";
        let s = scan("crates/matching/src/x.rs", src);
        assert_eq!(rules(&s), vec!["panic-path-index"]);
        assert_eq!(s.report.findings[0].line, 1);
    }

    #[test]
    fn array_types_attrs_and_plain_indexing_unflagged() {
        let src =
            "fn f(xs: &[u64; 4], i: usize) -> u64 { let a: [u64; 2] = [1, 2]; xs[i] + a[0] }\n";
        let s = scan("crates/matching/src/x.rs", src);
        assert!(s.report.findings.is_empty(), "{:?}", s.report.findings);
    }

    #[test]
    fn waiver_suppresses_and_records_consumption() {
        let src = "fn f(xs: &[u64], i: usize) -> u64 {\n\
                       // lint: i is the successor of a verified occupied slot\n\
                       xs[i - 1]\n\
                   }\n";
        let s = scan("crates/matching/src/x.rs", src);
        assert!(s.report.findings.is_empty(), "{:?}", s.report.findings);
        assert_eq!(s.report.suppressed.len(), 1);
        assert!(s.consumed.contains(&2));
    }

    #[test]
    fn cfg_not_test_is_not_gated() {
        let src = "#[cfg(not(test))]\n\
                   fn f(xs: &[u64], i: usize) -> u64 { xs[i - 1] }\n";
        let s = scan("crates/matching/src/x.rs", src);
        assert_eq!(rules(&s), vec!["panic-path-index"]);
    }

    #[test]
    fn cross_file_alias_is_seen_via_the_crate_index() {
        let def = "pub use std::collections::HashMap as SlotMap; // lint: t\n";
        let usage = "fn f() { let m = SlotMap::new(); }\n";
        let ldef = lex(def).unwrap();
        let lusage = lex(usage).unwrap();
        let tdef = build_trees(&ldef.tokens).unwrap();
        let tusage = build_trees(&lusage.tokens).unwrap();
        let index = index_crate(&[
            ("crates/core/src/a.rs", tdef.as_slice()),
            ("crates/core/src/b.rs", tusage.as_slice()),
        ]);
        let s = ast_scan(
            "crates/core/src/b.rs",
            usage,
            FileKind::LibSource,
            &tusage,
            &lusage,
            &index,
        );
        assert_eq!(rules(&s), vec!["alias-evading-hasher"]);
    }
}
