//! Full-fidelity Rust lexer for the AST-grade analyzer.
//!
//! Unlike the per-line [`crate::sanitize`] state machine (kept as the
//! fallback for files that fail to lex), this tokenizer works on the whole
//! file at once, so multi-line raw strings, nested block comments and
//! arbitrary `#`-count raw delimiters are exact, and every token carries
//! its 1-based source line. It also collects the two per-line side tables
//! the waiver machinery needs: the `// lint:` comment on each line, and
//! whether a line carries any code token at all (a comment-only `// lint:`
//! line forwards its waiver to the next line).
//!
//! The lexer is deliberately total over the subset of Rust this repo uses;
//! anything it cannot make sense of (an unterminated string, a stray
//! delimiter) is a [`LexError`] and the caller falls back to the string
//! scanner for that file.

use std::collections::BTreeMap;

/// Delimiter kind of a [`Tok::Open`] / [`Tok::Close`] pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including `_`, `self`, `as`, `mut`, …).
    Ident(String),
    /// `'a` — distinguished from char literals.
    Lifetime(String),
    /// String/byte/raw-string literal (contents dropped; they must never
    /// match a rule).
    LitStr,
    /// Char or byte literal.
    LitChar,
    /// Numeric literal; `float` is true for `1.0`, `1e9`, `2f64`, ….
    LitNum {
        /// Whether the literal is a floating-point literal.
        float: bool,
    },
    /// `::`
    PathSep,
    /// `->`
    RArrow,
    /// `=>`
    FatArrow,
    /// `..`, `..=` or `...`
    DotDot,
    /// Any other single punctuation character.
    Punct(char),
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Why a file could not be lexed (caller falls back to the line scanner).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending construct.
    pub line: u32,
    /// Human-readable reason.
    pub msg: String,
}

/// Token stream plus the per-line side tables used by waiver handling.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// `// lint: <reason>` comments, keyed by 1-based line.
    pub lint_comments: BTreeMap<u32, String>,
    /// Lines that carry at least one code token (not comment-only).
    pub code_lines: std::collections::BTreeSet<u32>,
}

impl Lexed {
    /// The waiver justification applying to `line`, if any: a `// lint:`
    /// comment on the line itself, or on a comment-only line directly
    /// above it. Returns the *comment's* line too, so consumption can be
    /// tracked for the stale-waiver wall.
    pub fn waiver_for(&self, line: u32) -> Option<(u32, &str)> {
        if let Some(j) = self.lint_comments.get(&line) {
            return Some((line, j.as_str()));
        }
        let prev = line.checked_sub(1)?;
        match self.lint_comments.get(&prev) {
            Some(j) if !self.code_lines.contains(&prev) => Some((prev, j.as_str())),
            _ => None,
        }
    }
}

/// Lex `text` into a [`Lexed`] stream.
pub fn lex(text: &str) -> Result<Lexed, LexError> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Lexed::default();
    let mut line: u32 = 1;
    let mut i = 0usize;
    let n = chars.len();

    macro_rules! push {
        ($tok:expr, $line:expr) => {{
            out.code_lines.insert($line);
            out.tokens.push(Token {
                tok: $tok,
                line: $line,
            });
        }};
    }

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment; capture `lint:` waivers (doc slashes and
                // leading `!` are not waiver carriers: `// lint:` exactly,
                // after optional whitespace).
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let body: String = chars[start..j].iter().collect();
                if let Some(reason) = body.trim().strip_prefix("lint:") {
                    out.lint_comments.insert(line, reason.trim().to_string());
                }
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    match chars[j] {
                        '\n' => {
                            line += 1;
                            j += 1;
                        }
                        '*' if chars.get(j + 1) == Some(&'/') => {
                            depth -= 1;
                            j += 2;
                        }
                        '/' if chars.get(j + 1) == Some(&'*') => {
                            depth += 1;
                            j += 2;
                        }
                        _ => j += 1,
                    }
                }
                if depth > 0 {
                    return Err(LexError {
                        line: start_line,
                        msg: "unterminated block comment".into(),
                    });
                }
                i = j;
            }
            '"' => {
                let l = line;
                i = lex_string(&chars, i, &mut line)?;
                push!(Tok::LitStr, l);
            }
            '\'' => {
                // Char literal vs lifetime.
                let next = chars.get(i + 1);
                let is_char = match next {
                    Some(&'\\') => true,
                    Some(&nc) => chars.get(i + 2) == Some(&'\'') && nc != '\'',
                    None => false,
                };
                if is_char {
                    let l = line;
                    i = lex_char(&chars, i, line)?;
                    push!(Tok::LitChar, l);
                } else {
                    // Lifetime: 'ident
                    let mut j = i + 1;
                    let mut name = String::new();
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        name.push(chars[j]);
                        j += 1;
                    }
                    // `'u{…}'`-style escapes were handled above; a bare
                    // tick with no ident (pattern like `&'_`) still lexes.
                    push!(Tok::Lifetime(name), line);
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let l = line;
                let (j, float) = lex_number(&chars, i);
                push!(Tok::LitNum { float }, l);
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                let mut name = String::new();
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    name.push(chars[j]);
                    j += 1;
                }
                // Raw/byte string prefixes: r"…", r#"…"#, b"…", br#"…"#, c"…".
                let is_str_prefix = matches!(name.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr")
                    && matches!(chars.get(j), Some(&'"') | Some(&'#'));
                if is_str_prefix {
                    let l = line;
                    if name.contains('r') || chars.get(j) == Some(&'#') {
                        match lex_raw_string(&chars, j, &mut line) {
                            Some(end) => {
                                push!(Tok::LitStr, l);
                                i = end;
                                continue;
                            }
                            None => {
                                // `r#ident` raw identifier, or `#` not a
                                // raw string: fall through as ident.
                            }
                        }
                    }
                    if chars.get(j) == Some(&'"') {
                        i = lex_string(&chars, j, &mut line)?;
                        push!(Tok::LitStr, l);
                        continue;
                    }
                }
                // Byte char b'x'
                if name == "b" && chars.get(j) == Some(&'\'') {
                    let l = line;
                    i = lex_char(&chars, j, line)?;
                    push!(Tok::LitChar, l);
                    continue;
                }
                push!(Tok::Ident(name), line);
                i = j;
            }
            '(' => {
                push!(Tok::Open(Delim::Paren), line);
                i += 1;
            }
            ')' => {
                push!(Tok::Close(Delim::Paren), line);
                i += 1;
            }
            '[' => {
                push!(Tok::Open(Delim::Bracket), line);
                i += 1;
            }
            ']' => {
                push!(Tok::Close(Delim::Bracket), line);
                i += 1;
            }
            '{' => {
                push!(Tok::Open(Delim::Brace), line);
                i += 1;
            }
            '}' => {
                push!(Tok::Close(Delim::Brace), line);
                i += 1;
            }
            ':' if chars.get(i + 1) == Some(&':') => {
                push!(Tok::PathSep, line);
                i += 2;
            }
            '-' if chars.get(i + 1) == Some(&'>') => {
                push!(Tok::RArrow, line);
                i += 2;
            }
            '=' if chars.get(i + 1) == Some(&'>') => {
                push!(Tok::FatArrow, line);
                i += 2;
            }
            '.' if chars.get(i + 1) == Some(&'.') => {
                let mut j = i + 2;
                if matches!(chars.get(j), Some(&'.') | Some(&'=')) {
                    j += 1;
                }
                push!(Tok::DotDot, line);
                i = j;
            }
            c => {
                push!(Tok::Punct(c), line);
                i += 1;
            }
        }
    }
    Ok(out)
}

/// Lex a `"…"` string starting at `chars[i] == '"'`; returns the index
/// past the closing quote, tracking newlines into `line`.
fn lex_string(chars: &[char], i: usize, line: &mut u32) -> Result<usize, LexError> {
    let start_line = *line;
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return Ok(j + 1),
            _ => j += 1,
        }
    }
    Err(LexError {
        line: start_line,
        msg: "unterminated string literal".into(),
    })
}

/// Lex a raw string starting at `chars[i]` being `#` or `"` (after the
/// `r`/`br` prefix). Returns `None` if this isn't actually a raw string
/// (e.g. `r#ident` raw identifiers).
fn lex_raw_string(chars: &[char], i: usize, line: &mut u32) -> Option<usize> {
    let mut hashes = 0usize;
    let mut j = i;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    while j < chars.len() {
        match chars[j] {
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => {
                let mut k = 0;
                while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                    k += 1;
                }
                if k == hashes {
                    return Some(j + 1 + hashes);
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    // Unterminated: treat as raw-to-EOF; the delimiter matcher will fail
    // and route the file to the fallback scanner.
    Some(chars.len())
}

/// Lex a char literal starting at `chars[i] == '\''`; returns index past
/// the closing tick.
fn lex_char(chars: &[char], i: usize, line: u32) -> Result<usize, LexError> {
    let mut j = i + 1;
    if chars.get(j) == Some(&'\\') {
        j += 1; // escape selector
        if matches!(chars.get(j), Some(&'u')) {
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            return Ok(j + 1);
        }
        j += 1;
    } else {
        j += 1;
    }
    if chars.get(j) == Some(&'\'') {
        Ok(j + 1)
    } else {
        Err(LexError {
            line,
            msg: "unterminated char literal".into(),
        })
    }
}

/// Lex a numeric literal starting at a digit; returns (end index, is_float).
fn lex_number(chars: &[char], i: usize) -> (usize, bool) {
    let n = chars.len();
    let mut j = i;
    let mut text = String::new();
    while j < n {
        let c = chars[j];
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(c);
            j += 1;
            // Exponent sign: 1e-9 / 1E+9.
            if (c == 'e' || c == 'E')
                && !text.starts_with("0x")
                && !text.starts_with("0b")
                && !text.starts_with("0o")
                && matches!(chars.get(j), Some(&'+') | Some(&'-'))
                && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit())
            {
                text.push(chars[j]);
                j += 1;
            }
        } else if c == '.' {
            // `1.0` continues the literal; `1.max(2)` and `1..n` do not.
            match chars.get(j + 1) {
                Some(d) if d.is_ascii_digit() => {
                    text.push('.');
                    j += 1;
                }
                Some(&'.') => break,
                Some(d) if d.is_alphabetic() || *d == '_' => break,
                _ => {
                    // trailing `1.`
                    text.push('.');
                    j += 1;
                    break;
                }
            }
        } else {
            break;
        }
    }
    let hexish = text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o");
    let float = text.contains('.')
        || (!hexish && (text.contains('e') || text.contains('E')))
        || text.ends_with("f32")
        || text.ends_with("f64");
    (j, float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn multi_line_raw_string_is_one_literal() {
        let src = "let s = r#\"line one\nHashMap::new()\n\"#; let x = 1;";
        let l = lex(src).unwrap();
        assert!(!idents(src).contains(&"HashMap".to_string()));
        // The `x = 1` after the raw string still lexes, on line 3.
        let x = l
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("x".into()))
            .unwrap();
        assert_eq!(x.line, 3);
    }

    #[test]
    fn lint_comments_and_code_lines() {
        let src = "// lint: standalone reason\nlet a = 1; // lint: inline reason\n";
        let l = lex(src).unwrap();
        assert_eq!(l.lint_comments.get(&1).unwrap(), "standalone reason");
        assert_eq!(l.lint_comments.get(&2).unwrap(), "inline reason");
        assert!(!l.code_lines.contains(&1));
        assert!(l.code_lines.contains(&2));
        // Same-line waiver wins over a standalone one above (mirrors the
        // string scanner's precedence).
        assert_eq!(l.waiver_for(2), Some((2, "inline reason")));
        assert_eq!(l.waiver_for(1), Some((1, "standalone reason")));
    }

    #[test]
    fn floats_vs_ints_vs_methods_on_literals() {
        let l = lex("1.0 + 2 + 3f64 + 1e9 + 0x1f + 4.max(5)").unwrap();
        let nums: Vec<bool> = l
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::LitNum { float } => Some(float),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![true, false, true, true, false, false, false]);
    }

    #[test]
    fn lifetimes_and_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let t = '\\n'; }").unwrap();
        assert!(l.tokens.iter().any(|t| t.tok == Tok::Lifetime("a".into())));
        assert_eq!(l.tokens.iter().filter(|t| t.tok == Tok::LitChar).count(), 2);
    }

    #[test]
    fn pathsep_and_arrows() {
        let l = lex("fn f() -> T { a::b(|x| match x { _ => 0 }) }").unwrap();
        assert!(l.tokens.iter().any(|t| t.tok == Tok::PathSep));
        assert!(l.tokens.iter().any(|t| t.tok == Tok::RArrow));
        assert!(l.tokens.iter().any(|t| t.tok == Tok::FatArrow));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("let s = \"oops").is_err());
    }

    #[test]
    fn nested_block_comments_skip_tokens() {
        let src = "/* outer /* inner HashMap */ still comment */ let ok = 1;";
        assert_eq!(idents(src), vec!["let", "ok"]);
    }
}
