//! Repo-specific static analysis for the reqsched workspace.
//!
//! The rules enforced here are the written determinism / correctness
//! contract of the codebase (see `docs/LINTS.md`):
//!
//! | rule | what it forbids |
//! |---|---|
//! | `nondet-hasher` | `std::collections::HashMap`/`HashSet` (default nondeterministic hasher) in scheduling/matching library code |
//! | `wall-clock` | `Instant::now` / `SystemTime::now` outside `crates/bench` |
//! | `thread-rng` | `thread_rng` / `rand::random` (unseeded randomness) outside `crates/bench` |
//! | `unwrap-in-lib` | `.unwrap()` / `.expect(` in library crate sources outside `#[cfg(test)]` |
//! | `vec-bool` | `Vec<bool>` in `crates/matching` / `crates/core` library sources (use the u64 `BitSet`/`BitMatrix` instead) |
//! | `unjustified-allow` | `#[allow(...)]` without a `// lint:` justification comment |
//! | `global-state-in-shard` | process-global mutable state (`OnceLock`, `LazyLock`, `lazy_static!`, `static mut`, `thread_local!`) in the sharded-engine crates (`crates/core`, `crates/matching`, `crates/sim`) |
//! | `unordered-par-reduce` | `.reduce(` / `.fold(` on a Rayon parallel iterator (`par_iter()`, `into_par_iter()`, `par_bridge()`) in the parallel-engine crates (`crates/offline`, `crates/matching`, `crates/sim`) — combination order is scheduling-dependent |
//! | `crate-metadata` | placeholder `repository` URL, missing `description`/`keywords` in workspace member manifests |
//!
//! On top of the line rules, every library source that parses is run
//! through the AST engine of [`ast`] (token trees from the hand-rolled
//! lexer of [`lex`], one per-crate item index across files), which adds
//! the deep rules a substring cannot express:
//!
//! | rule | what it forbids |
//! |---|---|
//! | `rayon-capture-audit` | `&mut` / shared interior-mutability captures reaching Rayon closures in the parallel-engine crates |
//! | `float-order-in-par` | `f32`/`f64` accumulation in parallel `reduce`/`fold`/`sum`/`product` |
//! | `alias-evading-hasher` | `HashMap`/`HashSet` reached through `use … as` renames or `type` aliases |
//! | `lossy-id-cast` | `as` casts narrowing round/slot/id-typed arithmetic |
//! | `panic-path-index` | slice `[…]` indexing with inline subtraction in hot-path crates |
//! | `stale-waiver` | a `// lint:` waiver that no rule (string or AST) consumes |
//!
//! Every rule shares one escape hatch: a `// lint: <reason>` comment on the
//! offending line (or the line directly above it) downgrades the finding to
//! a recorded *suppression* — visible in the JSON/SARIF reports, never
//! silent. Both engines report which waivers they consumed; an unconsumed
//! waiver is itself the `stale-waiver` error, so suppressions cannot rot.
//!
//! The whole analyzer is deliberately dependency-free: it must run in
//! offline containers with no registry access, so the lexer and token-tree
//! parser are hand-rolled rather than `syn`. Files the lexer cannot handle
//! fall back to the string rules alone and are listed in
//! [`ScanReport::parse_fallbacks`]. The per-rule fixtures under
//! `xtask/fixtures/` self-test every detector (see
//! `xtask/tests/selftest.rs`).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub mod ast;
pub mod lex;
pub mod sanitize;
pub mod sarif;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (see `docs/LINTS.md`).
    pub rule: &'static str,
    /// File path relative to the repo root.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

/// A finding waived by a `// lint:` justification comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// Rule identifier of the suppressed finding.
    pub rule: &'static str,
    /// File path relative to the repo root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The text after `// lint:`.
    pub justification: String,
}

/// Result of scanning a tree.
#[derive(Clone, Debug, Default)]
pub struct ScanReport {
    /// Violations that gate the exit code.
    pub findings: Vec<Finding>,
    /// Justified (waived) occurrences, kept for the report.
    pub suppressed: Vec<Suppression>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Files that failed to lex/parse and were analyzed with the string
    /// rules only (`"<rel>: <reason>"`). Never gates the exit code — the
    /// fallback rules still guard those files — but always visible.
    pub parse_fallbacks: Vec<String>,
}

impl ScanReport {
    /// Whether the scan found no gating violations.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn merge(&mut self, other: ScanReport) {
        self.findings.extend(other.findings);
        self.suppressed.extend(other.suppressed);
        self.files_scanned += other.files_scanned;
        self.parse_fallbacks.extend(other.parse_fallbacks);
    }
}

/// Where a source file sits in the tree — decides which rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of a library crate on the scheduling/matching path.
    LibSource,
    /// `src/` of the bench harness (timing and ad-hoc panics are its job).
    BenchSource,
    /// Test, bench, or example code.
    TestOrExample,
}

/// Classify `rel` (a path relative to the repo root, `/`-separated).
pub fn classify(rel: &str) -> FileKind {
    let in_bench = rel.starts_with("crates/bench/");
    if in_bench {
        return FileKind::BenchSource;
    }
    let is_src = (rel.starts_with("crates/") && rel.contains("/src/"))
        || (rel.starts_with("src/") && !rel.starts_with("src/bin/"));
    if is_src {
        FileKind::LibSource
    } else {
        FileKind::TestOrExample
    }
}

/// Scan one Rust source file (already classified) for rule violations.
pub fn scan_source(rel: &str, text: &str, kind: FileKind) -> ScanReport {
    scan_source_full(rel, text, kind).0
}

/// [`scan_source`] plus the set of `// lint:` comment lines whose waivers
/// were actually consumed by a suppression — the input the stale-waiver
/// wall needs.
pub fn scan_source_full(rel: &str, text: &str, kind: FileKind) -> (ScanReport, BTreeSet<usize>) {
    let mut report = ScanReport {
        files_scanned: 1,
        ..ScanReport::default()
    };
    let mut consumed: BTreeSet<usize> = BTreeSet::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut san = sanitize::Sanitizer::new();
    let mut cfg_test = CfgTestTracker::new();
    // `// lint:` on the previous line waives findings on this one.
    let mut prev_lint_comment: Option<(usize, String)> = None;
    // unordered-par-reduce lookback: > 0 while a Rayon parallel-iterator
    // introduction is within the last PAR_LOOKBACK lines (builder chains
    // put `.reduce(` on its own line). A `.collect(` ends the pipeline.
    const PAR_LOOKBACK: u8 = 2;
    let mut par_recent: u8 = 0;

    for (idx, raw) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let (code, comment) = san.sanitize_line(raw);
        let in_test = cfg_test.observe(&code);

        let lint_comment = comment
            .trim()
            .strip_prefix("lint:")
            .map(|r| r.trim().to_string());
        let waiver = lint_comment
            .clone()
            .map(|j| (lineno, j))
            .or_else(|| prev_lint_comment.take());
        // A comment-only line carries its waiver forward to the next line.
        prev_lint_comment = if code.trim().is_empty() {
            lint_comment.clone().map(|j| (lineno, j))
        } else {
            None
        };

        let consumed = &mut consumed;
        let mut hit = |rule: &'static str| match &waiver {
            Some((src_line, justification)) => {
                consumed.insert(*src_line);
                report.suppressed.push(Suppression {
                    rule,
                    file: rel.to_string(),
                    line: lineno,
                    justification: justification.clone(),
                })
            }
            None => report.findings.push(Finding {
                rule,
                file: rel.to_string(),
                line: lineno,
                excerpt: raw.trim().to_string(),
            }),
        };

        // nondet-hasher: library sources only; test code may hash freely.
        if kind == FileKind::LibSource
            && !in_test
            && (code.contains("HashMap") || code.contains("HashSet"))
        {
            hit("nondet-hasher");
        }

        // wall-clock / thread-rng: everywhere except the bench harness.
        if kind != FileKind::BenchSource {
            if code.contains("Instant::now") || code.contains("SystemTime::now") {
                hit("wall-clock");
            }
            if code.contains("thread_rng") || code.contains("rand::random") {
                hit("thread-rng");
            }
        }

        // unwrap-in-lib: library sources outside #[cfg(test)] modules.
        if kind == FileKind::LibSource
            && !in_test
            && (code.contains(".unwrap()") || code.contains(".expect("))
        {
            hit("unwrap-in-lib");
        }

        // vec-bool: the word-parallel core keeps boolean per-vertex state
        // in u64 bitsets (`reqsched_matching::{BitSet, BitMatrix}`); a
        // `Vec<bool>` in the matching/core hot-path crates spends a byte
        // per flag and forfeits the word-wide AND/ANDNOT/trailing_zeros
        // scans the engines rely on.
        if kind == FileKind::LibSource
            && !in_test
            && (rel.starts_with("crates/matching/") || rel.starts_with("crates/core/"))
            && code.contains("Vec<bool>")
        {
            hit("vec-bool");
        }

        // global-state-in-shard: the sharded round engine runs shard groups
        // concurrently and proves determinism by replay; any process-global
        // mutable state shared across groups (a memoization cell, a
        // thread-local scratch buffer, a lazily-initialized table) couples
        // shards through a channel the replay can't see. Confine the rule to
        // the crates on the shard execution path; bench/test code is free to
        // cache.
        if kind == FileKind::LibSource
            && !in_test
            && (rel.starts_with("crates/core/")
                || rel.starts_with("crates/matching/")
                || rel.starts_with("crates/sim/"))
            && (code.contains("OnceLock")
                || code.contains("LazyLock")
                || code.contains("lazy_static!")
                || code.contains("static mut ")
                || code.contains("thread_local!"))
        {
            hit("global-state-in-shard");
        }

        // unordered-par-reduce: Rayon's `reduce`/`fold` combine partial
        // results in whatever order the work-stealing scheduler joins them;
        // unless the operator is associative AND commutative the value
        // varies run to run, which breaks the determinism contract the
        // parallel engines (sharded OPT, batched augmentation, sharded
        // rounds) prove by replay. Map into an ordered collection and
        // combine sequentially instead, or waive with `// lint:` stating
        // why the operator is order-insensitive.
        let has_par = code.contains("par_iter()")
            || code.contains("into_par_iter()")
            || code.contains("par_bridge()");
        if has_par {
            par_recent = PAR_LOOKBACK + 1;
        }
        if par_recent > 0
            && kind == FileKind::LibSource
            && !in_test
            && (rel.starts_with("crates/offline/")
                || rel.starts_with("crates/matching/")
                || rel.starts_with("crates/sim/"))
            && (code.contains(".reduce(") || code.contains(".fold("))
        {
            hit("unordered-par-reduce");
        }
        if code.contains(".collect(") {
            // An ordered collect terminates the parallel pipeline; a serial
            // fold over its result is fine.
            par_recent = 0;
        } else {
            par_recent = par_recent.saturating_sub(1);
        }

        // unjustified-allow: everywhere (tests included) — the justification
        // comment is the allow's documentation, not a soundness waiver.
        if code.contains("#[allow(") || code.contains("#![allow(") {
            hit("unjustified-allow");
        }
    }
    (report, consumed)
}

/// Scan one Rust source file with the full engine: the string rules, the
/// AST rules (when the file parses — see [`ast`]), and the stale-waiver
/// wall. `index` is the file's crate index, when it belongs to a crate.
pub fn scan_file(
    rel: &str,
    text: &str,
    kind: FileKind,
    index: Option<&ast::CrateIndex>,
) -> ScanReport {
    let (mut report, mut consumed) = scan_source_full(rel, text, kind);
    let parsed = lex::lex(text).and_then(|lexed| {
        let trees = ast::build_trees(&lexed.tokens)?;
        Ok((lexed, trees))
    });
    match parsed {
        Ok((lexed, trees)) => {
            let empty = ast::CrateIndex::default();
            let scan = ast::ast_scan(rel, text, kind, &trees, &lexed, index.unwrap_or(&empty));
            report.findings.extend(scan.report.findings);
            report.suppressed.extend(scan.report.suppressed);
            consumed.extend(scan.consumed);
            // Stale-waiver wall: a `// lint:` comment no rule consumed is
            // itself a violation — suppressions must not outlive what they
            // suppress. (A waiver cannot waive its own staleness: the
            // comment *is* the finding.)
            for (line, reason) in &lexed.lint_comments {
                if !consumed.contains(&(*line as usize)) {
                    report.findings.push(Finding {
                        rule: "stale-waiver",
                        file: rel.to_string(),
                        line: *line as usize,
                        excerpt: format!("// lint: {reason}"),
                    });
                }
            }
            report
                .findings
                .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        }
        Err(e) => {
            // The stale wall and AST rules need an exact parse; fall back
            // to the string rules alone and say so.
            report
                .parse_fallbacks
                .push(format!("{rel}: line {}: {}", e.line, e.msg));
        }
    }
    report
}

/// Tracks whether the scanner is inside a `#[cfg(test)]`-gated item.
struct CfgTestTracker {
    depth: i64,
    /// `#[cfg(test)]` seen, waiting for the item it gates.
    pending: bool,
    /// Brace depth at which the current test region closes.
    region_floor: Option<i64>,
}

impl CfgTestTracker {
    fn new() -> CfgTestTracker {
        CfgTestTracker {
            depth: 0,
            pending: false,
            region_floor: None,
        }
    }

    /// Feed one sanitized line; returns whether the *line* is test-gated.
    fn observe(&mut self, code: &str) -> bool {
        let was_in_region = self.region_floor.is_some();
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            self.pending = true;
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        let trimmed = code.trim_start();
        let is_attr_or_blank = trimmed.is_empty() || trimmed.starts_with('#');
        if self.pending && !is_attr_or_blank {
            if self.region_floor.is_none() && opens > 0 {
                self.region_floor = Some(self.depth);
            }
            // Attribute gating a braceless item (e.g. `mod tests;`): the
            // single line itself is test-gated.
            self.pending = false;
            self.depth += opens - closes;
            if let Some(floor) = self.region_floor {
                if self.depth <= floor {
                    self.region_floor = None;
                }
            }
            return true;
        }
        self.depth += opens - closes;
        if let Some(floor) = self.region_floor {
            if self.depth <= floor {
                self.region_floor = None;
            }
        }
        was_in_region || self.region_floor.is_some()
    }
}

/// Scan a workspace member manifest for the metadata contract.
pub fn scan_manifest(rel: &str, text: &str, is_workspace_root: bool) -> ScanReport {
    let mut report = ScanReport::default();
    let mut whole = |rule: &'static str, excerpt: &str| {
        report.findings.push(Finding {
            rule,
            file: rel.to_string(),
            line: 0,
            excerpt: excerpt.to_string(),
        });
    };
    if is_workspace_root {
        for line in text.lines() {
            if line.trim_start().starts_with("repository")
                && (line.contains("example.invalid") || line.contains("example.com"))
            {
                whole(
                    "crate-metadata",
                    "placeholder repository URL in [workspace.package]",
                );
            }
        }
        return report;
    }
    let has_key = |key: &str| {
        text.lines().any(|l| {
            let t = l.trim_start();
            t.strip_prefix(key)
                .is_some_and(|rest| rest.trim_start().starts_with('=') || rest.starts_with('.'))
        })
    };
    if !has_key("description") {
        whole("crate-metadata", "missing `description` in [package]");
    }
    if !has_key("keywords") {
        whole("crate-metadata", "missing `keywords` in [package]");
    }
    report
}

/// The directories scanned for Rust sources, relative to the repo root.
pub const SOURCE_ROOTS: &[&str] = &["crates", "src", "tests", "benches", "examples"];

/// The crate a library source belongs to, for per-crate index grouping.
/// `crates/<name>/src/…` → `<name>`; the facade `src/…` → `reqsched`.
pub fn crate_of(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        if tail.starts_with("src/") {
            return Some(name.to_string());
        }
        return None;
    }
    if rel.starts_with("src/") {
        return Some("reqsched".to_string());
    }
    None
}

/// Walk the repo and run every source + manifest rule. Tool walls (clippy,
/// fmt, doc) are the binary's job — this function is pure and fast, which
/// is what the self-tests exercise.
///
/// Two passes: first every library source of each crate is lexed and
/// parsed once into that crate's [`ast::CrateIndex`] (so `use … as`
/// renames and `type` aliases resolve across files), then every file is
/// scanned with [`scan_file`] — string rules, AST rules, stale-waiver
/// wall.
pub fn analyze_tree(root: &Path) -> std::io::Result<ScanReport> {
    let mut report = ScanReport::default();
    let mut rs_files: Vec<PathBuf> = Vec::new();
    for sub in SOURCE_ROOTS {
        collect_rs(&root.join(sub), &mut rs_files)?;
    }
    rs_files.sort();
    let files: Vec<(String, String)> = rs_files
        .iter()
        .map(|path| {
            let rel = rel_str(root, path);
            std::fs::read_to_string(path).map(|text| (rel, text))
        })
        .collect::<std::io::Result<_>>()?;

    // Pass 1: per-crate item/fn indexes over the parsed library sources.
    let mut parsed: Vec<(usize, String, Vec<ast::Tt>)> = Vec::new();
    for (i, (rel, text)) in files.iter().enumerate() {
        if classify(rel) != FileKind::LibSource {
            continue;
        }
        let Some(krate) = crate_of(rel) else { continue };
        if let Ok(lexed) = lex::lex(text) {
            if let Ok(trees) = ast::build_trees(&lexed.tokens) {
                parsed.push((i, krate, trees));
            }
        }
    }
    let mut indexes: std::collections::BTreeMap<String, ast::CrateIndex> =
        std::collections::BTreeMap::new();
    {
        let mut by_crate: std::collections::BTreeMap<&str, Vec<(&str, &[ast::Tt])>> =
            std::collections::BTreeMap::new();
        for (i, krate, trees) in &parsed {
            by_crate
                .entry(krate.as_str())
                .or_default()
                .push((files[*i].0.as_str(), trees.as_slice()));
        }
        for (krate, crate_files) in by_crate {
            indexes.insert(krate.to_string(), ast::index_crate(&crate_files));
        }
    }

    // Pass 2: scan every file with its crate's index.
    for (rel, text) in &files {
        let index = crate_of(rel).and_then(|k| indexes.get(&k));
        report.merge(scan_file(rel, text, classify(rel), index));
    }

    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        let text = std::fs::read_to_string(&root_manifest)?;
        report.merge(scan_manifest("Cargo.toml", &text, true));
    }
    let mut manifests: Vec<PathBuf> = Vec::new();
    for dir in ["crates", "xtask"] {
        let base = root.join(dir);
        if dir == "xtask" {
            let m = base.join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
            continue;
        }
        if let Ok(entries) = std::fs::read_dir(&base) {
            for entry in entries.flatten() {
                let m = entry.path().join("Cargo.toml");
                if m.is_file() {
                    manifests.push(m);
                }
            }
        }
    }
    manifests.sort();
    for m in manifests {
        let rel = rel_str(root, &m);
        let text = std::fs::read_to_string(&m)?;
        report.merge(scan_manifest(&rel, &text, false));
    }
    Ok(report)
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)?.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Minimal JSON string escaping for the machine-readable report.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/delta.rs"), FileKind::LibSource);
        assert_eq!(classify("src/lib.rs"), FileKind::LibSource);
        assert_eq!(classify("crates/bench/src/lib.rs"), FileKind::BenchSource);
        assert_eq!(
            classify("crates/bench/benches/hot_path.rs"),
            FileKind::BenchSource
        );
        assert_eq!(classify("tests/structural.rs"), FileKind::TestOrExample);
        assert_eq!(
            classify("crates/core/tests/compliance.rs"),
            FileKind::TestOrExample
        );
        assert_eq!(classify("examples/quickstart.rs"), FileKind::TestOrExample);
    }

    #[test]
    fn unwrap_inside_cfg_test_is_exempt() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let r = scan_source("crates/core/src/x.rs", src, FileKind::LibSource);
        assert!(r.clean(), "{:?}", r.findings);
    }

    #[test]
    fn unwrap_after_cfg_test_region_is_caught() {
        let src = "#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() { x.unwrap(); }\n";
        let r = scan_source("crates/core/src/x.rs", src, FileKind::LibSource);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "unwrap-in-lib");
        assert_eq!(r.findings[0].line, 5);
    }

    #[test]
    fn lint_comment_suppresses_and_records() {
        let src = "use std::collections::HashMap; // lint: keyed by ptr, order never observed\n";
        let r = scan_source("crates/core/src/x.rs", src, FileKind::LibSource);
        assert!(r.clean());
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].rule, "nondet-hasher");
        assert!(r.suppressed[0].justification.contains("ptr"));
    }

    #[test]
    fn preceding_line_lint_comment_suppresses() {
        let src = "// lint: justified above\n#[allow(dead_code)]\nfn f() {}\n";
        let r = scan_source("tests/x.rs", src, FileKind::TestOrExample);
        assert!(r.clean(), "{:?}", r.findings);
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn mentions_in_comments_and_strings_are_ignored() {
        let src = "//! HashMap is banned; .unwrap() too\nfn f() { let s = \"Instant::now\"; }\n";
        let r = scan_source("crates/core/src/x.rs", src, FileKind::LibSource);
        assert!(r.clean(), "{:?}", r.findings);
    }

    #[test]
    fn manifest_missing_keywords_flagged() {
        let toml = "[package]\nname = \"x\"\ndescription = \"y\"\n";
        let r = scan_manifest("crates/x/Cargo.toml", toml, false);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].excerpt.contains("keywords"));
    }

    #[test]
    fn manifest_workspace_inherited_keys_accepted() {
        let toml =
            "[package]\nname = \"x\"\ndescription.workspace = true\nkeywords.workspace = true\n";
        let r = scan_manifest("crates/x/Cargo.toml", toml, false);
        assert!(r.clean());
    }

    #[test]
    fn placeholder_repository_flagged() {
        let toml = "[workspace.package]\nrepository = \"https://example.invalid/reqsched\"\n";
        let r = scan_manifest("Cargo.toml", toml, true);
        assert_eq!(r.findings.len(), 1);
    }
}
