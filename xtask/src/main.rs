//! `cargo xtask analyze` — the repo's one-command correctness wall.
//!
//! Runs, in order:
//! 1. the custom source lints (determinism / invariant rules, see
//!    `docs/LINTS.md` and the library half of this crate),
//! 2. the manifest metadata checks,
//! 3. the tool walls: `cargo fmt --check`, `cargo clippy --workspace
//!    --all-targets -- -D warnings`, and `cargo doc` with warnings denied.
//!
//! Exit code 0 iff everything is clean. `--json <path>` additionally
//! writes a machine-readable report (consumed by CI as an artifact),
//! `--sarif <path>` a GitHub-code-scanning-compatible SARIF 2.1.0
//! document, and `--waivers` prints every active `// lint:` waiver with
//! rule, file:line, and justification. `--no-tools` runs only the
//! source/manifest rules — that mode is fully offline and sub-second,
//! suitable for pre-commit hooks.
//!
//! Offline containers (no registry access, stub crates vendored in
//! `/tmp/vendor`) are auto-detected the same way `scripts/bench_smoke.sh`
//! does; `cargo clippy` cannot forward `--config` through its re-exec
//! there, so the wall falls back to driving `clippy-driver` directly via
//! `RUSTC_WORKSPACE_WRAPPER`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use xtask::{analyze_tree, json_escape, sarif, ScanReport};

struct ToolResult {
    name: &'static str,
    status: &'static str, // "pass" | "fail" | "skipped"
    detail: String,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!(
            "usage: cargo xtask analyze [--json <path>] [--sarif <path>] [--waivers] [--no-tools] [--root <dir>]"
        );
        return ExitCode::from(2);
    };
    if cmd != "analyze" {
        eprintln!("unknown xtask command `{cmd}` (try `analyze`)");
        return ExitCode::from(2);
    }
    let mut json_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut list_waivers = false;
    let mut run_tools = true;
    let mut root = default_root();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--sarif" => match args.next() {
                Some(p) => sarif_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--sarif needs a path");
                    return ExitCode::from(2);
                }
            },
            "--waivers" => list_waivers = true,
            "--no-tools" => run_tools = false,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    println!("analyzing {}", root.display());
    let report = match analyze_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    print_scan(&report);
    if list_waivers {
        print_waivers(&report);
    }

    let tools = if run_tools {
        run_tool_walls(&root)
    } else {
        Vec::new()
    };
    for t in &tools {
        println!("tool {:<8} {}{}", t.name, t.status, fmt_detail(&t.detail));
    }

    let tools_failed = tools.iter().filter(|t| t.status == "fail").count();
    let clean = report.clean() && tools_failed == 0;
    if let Some(path) = json_path {
        match std::fs::write(&path, render_json(&report, &tools, clean)) {
            Ok(()) => println!("report written to {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = sarif_path {
        match std::fs::write(&path, sarif::render_sarif(&report)) {
            Ok(()) => println!("sarif written to {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    println!(
        "analyze: {} ({} files, {} findings, {} suppressed, {} tool failures)",
        if clean { "clean" } else { "DIRTY" },
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        tools_failed,
    );
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn default_root() -> PathBuf {
    // xtask lives at <repo>/xtask, so the repo root is one level up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn print_scan(report: &ScanReport) {
    for f in &report.findings {
        if f.line == 0 {
            println!("{}: [{}] {}", f.file, f.rule, f.excerpt);
        } else {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.excerpt);
        }
    }
    for s in &report.suppressed {
        println!(
            "{}:{}: [{}] suppressed: {}",
            s.file, s.line, s.rule, s.justification
        );
    }
    for p in &report.parse_fallbacks {
        println!("parse fallback (string rules only): {p}");
    }
}

fn print_waivers(report: &ScanReport) {
    println!("active waivers: {}", report.suppressed.len());
    for s in &report.suppressed {
        println!(
            "  {:<22} {}:{} — {}",
            s.rule, s.file, s.line, s.justification
        );
    }
}

fn fmt_detail(detail: &str) -> String {
    if detail.is_empty() {
        String::new()
    } else {
        format!(" ({})", detail.lines().next().unwrap_or(""))
    }
}

/// Offline-container detection, mirroring `scripts/bench_smoke.sh`: stub
/// crates vendored under /tmp/vendor and no reachable registry.
fn offline_config_args(root: &Path) -> Option<Vec<String>> {
    if !Path::new("/tmp/vendor").is_dir() {
        return None;
    }
    let plain_ok = Command::new("cargo")
        .args(["metadata", "-q", "--format-version", "1"])
        .current_dir(root)
        .output()
        .is_ok_and(|o| o.status.success());
    if plain_ok {
        return None;
    }
    Some(vec![
        "--config".into(),
        "source.crates-io.replace-with=\"local-stubs\"".into(),
        "--config".into(),
        "source.local-stubs.directory=\"/tmp/vendor\"".into(),
    ])
}

fn run_tool_walls(root: &Path) -> Vec<ToolResult> {
    let offline = offline_config_args(root);
    let cfg: &[String] = offline.as_deref().unwrap_or(&[]);
    let mut results = Vec::new();

    results.push(run_tool(
        "fmt",
        Command::new("cargo")
            .args(cfg)
            .args(["fmt", "--check"])
            .current_dir(root),
    ));

    let clippy = if offline.is_none() {
        run_tool(
            "clippy",
            Command::new("cargo")
                .args([
                    "clippy",
                    "--workspace",
                    "--all-targets",
                    "--",
                    "-D",
                    "warnings",
                ])
                .current_dir(root),
        )
    } else {
        // `cargo clippy` re-execs cargo without our `--config` overrides,
        // which dies resolving the registry offline. Drive the driver
        // directly instead; CLIPPY_ARGS is how cargo-clippy itself passes
        // the lint level down.
        match which("clippy-driver") {
            Some(driver) => run_tool(
                "clippy",
                Command::new("cargo")
                    .args(cfg)
                    .args(["check", "--workspace", "--all-targets"])
                    .env("RUSTC_WORKSPACE_WRAPPER", driver)
                    .env("CLIPPY_ARGS", "-Dwarnings")
                    .current_dir(root),
            ),
            None => ToolResult {
                name: "clippy",
                status: "skipped",
                detail: "clippy-driver not installed".into(),
            },
        }
    };
    results.push(clippy);

    results.push(run_tool(
        "doc",
        Command::new("cargo")
            .args(cfg)
            .args(["doc", "--workspace", "--no-deps"])
            .env("RUSTDOCFLAGS", "-D warnings")
            .current_dir(root),
    ));

    results
}

fn which(bin: &str) -> Option<PathBuf> {
    let paths = std::env::var_os("PATH")?;
    std::env::split_paths(&paths)
        .map(|p| p.join(bin))
        .find(|p| p.is_file())
}

fn run_tool(name: &'static str, cmd: &mut Command) -> ToolResult {
    match cmd.output() {
        Ok(out) if out.status.success() => ToolResult {
            name,
            status: "pass",
            detail: String::new(),
        },
        Ok(out) => {
            let stderr = String::from_utf8_lossy(&out.stderr);
            let stdout = String::from_utf8_lossy(&out.stdout);
            let mut detail: String = stderr
                .lines()
                .chain(stdout.lines())
                .filter(|l| l.contains("error") || l.contains("Diff in") || l.contains("warning"))
                .take(20)
                .collect::<Vec<_>>()
                .join("\n");
            if detail.is_empty() {
                detail = format!("exit {:?}", out.status.code());
            }
            ToolResult {
                name,
                status: "fail",
                detail,
            }
        }
        Err(e) => ToolResult {
            name,
            status: "skipped",
            detail: format!("cannot run: {e}"),
        },
    }
}

fn render_json(report: &ScanReport, tools: &[ToolResult], clean: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"excerpt\": \"{}\"}}{}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.excerpt),
            if i + 1 < report.findings.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  ],\n  \"suppressed\": [\n");
    for (i, s) in report.suppressed.iter().enumerate() {
        let _ =
            writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"justification\": \"{}\"}}{}",
            json_escape(s.rule),
            json_escape(&s.file),
            s.line,
            json_escape(&s.justification),
            if i + 1 < report.suppressed.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"parse_fallbacks\": [\n");
    for (i, p) in report.parse_fallbacks.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{}\"{}",
            json_escape(p),
            if i + 1 < report.parse_fallbacks.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  ],\n  \"tools\": [\n");
    for (i, t) in tools.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"status\": \"{}\", \"detail\": \"{}\"}}{}",
            json_escape(t.name),
            json_escape(t.status),
            json_escape(&t.detail),
            if i + 1 < tools.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"summary\": {{\"files_scanned\": {}, \"findings\": {}, \"suppressed\": {}, \"clean\": {}}}\n}}",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        clean,
    );
    out
}
