//! Line sanitizer: strips comments and string-literal contents so the rule
//! matchers only ever see code tokens.
//!
//! This is not a Rust lexer — it is the minimal state machine the lint
//! rules need: a doc comment mentioning `.unwrap()` or a panic message
//! containing `{` must not trip a matcher or the brace-depth tracker.
//! Handled: `//` line comments (returned separately, for `// lint:`
//! waivers), `/* */` block comments (nesting, multi-line), `"…"` strings
//! with escapes, single-line `r"…"` / `r#"…"#` raw strings, and char
//! literals vs. lifetimes.

/// Carries block-comment state across the lines of one file.
#[derive(Debug, Default)]
pub struct Sanitizer {
    block_comment_depth: u32,
}

impl Sanitizer {
    /// A sanitizer at the start of a file.
    pub fn new() -> Sanitizer {
        Sanitizer::default()
    }

    /// Split `line` into (code with strings/comments blanked, trailing `//`
    /// comment text). String literals are replaced by `""` so delimiters
    /// stay visible but contents cannot match rules.
    pub fn sanitize_line(&mut self, line: &str) -> (String, String) {
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let bytes: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            if self.block_comment_depth > 0 {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    self.block_comment_depth -= 1;
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    self.block_comment_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match c {
                '/' if bytes.get(i + 1) == Some(&'/') => {
                    comment = bytes[i + 2..].iter().collect();
                    break;
                }
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    self.block_comment_depth += 1;
                    i += 2;
                }
                '"' => {
                    code.push_str("\"\"");
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                'r' if matches!(bytes.get(i + 1), Some(&'"') | Some(&'#')) => {
                    // Raw string r"…" or r#"…"#; assume it closes on this
                    // line (multi-line raw strings are absent from lint
                    // targets; worst case the rest of the line is blanked).
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) != Some(&'"') {
                        code.push(c);
                        i += 1;
                        continue;
                    }
                    code.push_str("\"\"");
                    j += 1;
                    'raw: while j < bytes.len() {
                        if bytes[j] == '"' {
                            let mut k = 0;
                            while k < hashes && bytes.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                }
                '\'' => {
                    // Char literal ('x', '\n', '\u{..}') vs lifetime ('a).
                    let next = bytes.get(i + 1);
                    let is_char = match next {
                        Some(&'\\') => true,
                        Some(&nc) => bytes.get(i + 2) == Some(&'\'') && nc != '\'',
                        None => false,
                    };
                    if is_char {
                        code.push_str("' '");
                        i += 1;
                        if bytes.get(i) == Some(&'\\') {
                            i += 1; // skip the escape selector
                            if matches!(bytes.get(i), Some(&'u')) {
                                while i < bytes.len() && bytes[i] != '\'' {
                                    i += 1;
                                }
                                i += 1;
                                continue;
                            }
                        }
                        i += 1; // the char itself
                        if bytes.get(i) == Some(&'\'') {
                            i += 1;
                        }
                    } else {
                        code.push(c); // lifetime tick
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        (code, comment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(line: &str) -> String {
        Sanitizer::new().sanitize_line(line).0
    }

    #[test]
    fn strings_are_blanked() {
        assert_eq!(code(r#"panic!("{id:?} x.unwrap()")"#), r#"panic!("")"#);
    }

    #[test]
    fn line_comment_split_off() {
        let (c, m) = Sanitizer::new().sanitize_line("let x = 1; // lint: reason");
        assert_eq!(c, "let x = 1; ");
        assert_eq!(m.trim(), "lint: reason");
    }

    #[test]
    fn block_comments_span_lines() {
        let mut s = Sanitizer::new();
        assert_eq!(s.sanitize_line("a /* start").0, "a ");
        assert_eq!(s.sanitize_line("middle .unwrap()").0, "");
        assert_eq!(s.sanitize_line("end */ b").0, " b");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        assert_eq!(code("m.matches('{').count()"), "m.matches(' ').count()");
        assert_eq!(code("fn f<'a>(x: &'a str)"), "fn f<'a>(x: &'a str)");
        assert_eq!(code(r"let c = '\n';"), "let c = ' ';");
    }

    #[test]
    fn raw_strings_blanked() {
        assert_eq!(code(r##"let s = r#"Instant::now"#;"##), "let s = \"\";");
        assert_eq!(code(r#"let s = r"x.unwrap()";"#), "let s = \"\";");
    }

    #[test]
    fn escaped_quote_stays_inside_string() {
        assert_eq!(code(r#"let s = "a\"b.unwrap()"; x"#), r#"let s = ""; x"#);
    }
}
