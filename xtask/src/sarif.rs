//! SARIF 2.1.0 rendering for `cargo xtask analyze --sarif <path>`.
//!
//! Emits the minimal static-analysis interchange document GitHub code
//! scanning accepts: one run, one driver (`xtask-analyze`), a rule table
//! built from whichever rules actually fired, and one `result` per
//! finding. Suppressed findings are emitted with a `suppressions` entry
//! (kind `inSource`) so waivers stay visible in the scanning UI instead
//! of silently vanishing. Hand-rolled JSON, same as the `--json` report —
//! xtask stays dependency-free so it builds in offline containers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{json_escape, ScanReport};

/// One-line rule descriptions for the SARIF rule table. Unknown rules
/// (future additions) fall back to the rule id itself.
fn rule_help(rule: &str) -> &'static str {
    match rule {
        "nondet-hasher" => "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet or a seeded hasher",
        "alias-evading-hasher" => "HashMap/HashSet reached through a `use ... as` rename or type alias; aliasing does not make iteration order deterministic",
        "wall-clock" => "wall-clock time in library code breaks replayability; thread simulated rounds instead",
        "thread-rng" => "thread_rng/from_entropy is unseeded; all randomness must flow from an explicit seed",
        "unwrap-in-lib" => "unwrap/expect in library code turns recoverable errors into panics",
        "vec-bool" => "Vec<bool> on hot paths wastes 7 bits per flag; use the u64 bitset types",
        "unjustified-allow" => "#[allow(...)] without a `// lint:` justification hides problems silently",
        "global-state-in-shard" => "mutable global state breaks shard isolation and cross-shard determinism",
        "unordered-par-reduce" => "parallel reduction without a documented ordering argument",
        "rayon-capture-audit" => "Rayon closure captures &mut or shared interior-mutable state; route state through the shard-owned receiver instead",
        "float-order-in-par" => "f32/f64 accumulation in a parallel reduce/fold is order-sensitive; use integer/fixed-point accumulators or a documented deterministic reduction",
        "lossy-id-cast" => "`as` cast narrows an id/round/slot-typed integer and can silently truncate",
        "panic-path-index" => "slice `[]` indexing with arithmetic on a library hot path can panic; prefer .last()/.get() or a checked invariant",
        "stale-waiver" => "a `// lint: <reason>` waiver that no rule consumes is stale and must be removed",
        "crate-metadata" => "workspace manifest metadata drifted from the conventions",
        _ => "",
    }
}

/// Render a [`ScanReport`] as a SARIF 2.1.0 document.
pub fn render_sarif(report: &ScanReport) -> String {
    // Stable rule table: every rule that fired (findings + suppressions),
    // sorted, with an index so results can point at it.
    let mut rules: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &report.findings {
        let next = rules.len();
        rules.entry(f.rule).or_insert(next);
    }
    for s in &report.suppressed {
        let next = rules.len();
        rules.entry(s.rule).or_insert(next);
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"xtask-analyze\",\n");
    out.push_str(
        "          \"informationUri\": \"https://example.invalid/reqsched/docs/LINTS.md\",\n",
    );
    out.push_str("          \"rules\": [\n");
    let n_rules = rules.len();
    for (i, (rule, _)) in rules.iter().enumerate() {
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}",
            json_escape(rule),
            json_escape(rule_help(rule)),
            if i + 1 < n_rules { "," } else { "" },
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");

    let total = report.findings.len() + report.suppressed.len();
    let mut emitted = 0usize;
    let mut push_result = |out: &mut String,
                           rule: &str,
                           file: &str,
                           line: usize,
                           msg: &str,
                           waiver: Option<&str>| {
        emitted += 1;
        let idx = rules.get(rule).copied().unwrap_or(0);
        let _ = write!(
                out,
                "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]",
                json_escape(rule),
                idx,
                if waiver.is_some() { "note" } else { "error" },
                json_escape(msg),
                json_escape(file),
                line.max(1),
            );
        if let Some(reason) = waiver {
            let _ = write!(
                out,
                ", \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": \"{}\"}}]",
                json_escape(reason),
            );
        }
        let _ = writeln!(out, "}}{}", if emitted < total { "," } else { "" });
    };

    for f in &report.findings {
        push_result(&mut out, f.rule, &f.file, f.line, &f.excerpt, None);
    }
    for s in &report.suppressed {
        push_result(
            &mut out,
            s.rule,
            &s.file,
            s.line,
            &format!("suppressed: {}", s.justification),
            Some(&s.justification),
        );
    }

    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Suppression};

    fn sample() -> ScanReport {
        let mut r = ScanReport::default();
        r.files_scanned = 2;
        r.findings.push(Finding {
            rule: "nondet-hasher",
            file: "crates/core/src/x.rs".into(),
            line: 7,
            excerpt: "let m: HashMap<u32, u32> = HashMap::new();".into(),
        });
        r.suppressed.push(Suppression {
            rule: "wall-clock",
            file: "crates/sim/src/y.rs".into(),
            line: 3,
            justification: "startup banner only".into(),
        });
        r
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let doc = render_sarif(&sample());
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("sarif-schema-2.1.0.json"));
        assert!(doc.contains("\"id\": \"nondet-hasher\""));
        assert!(doc.contains("\"id\": \"wall-clock\""));
        assert!(doc.contains("\"uri\": \"crates/core/src/x.rs\""));
        assert!(doc.contains("\"startLine\": 7"));
        // The waived finding carries an inSource suppression, not an error.
        assert!(doc.contains("\"kind\": \"inSource\""));
        assert!(doc.contains("\"justification\": \"startup banner only\""));
    }

    #[test]
    fn sarif_empty_report_is_wellformed() {
        let doc = render_sarif(&ScanReport::default());
        assert!(doc.contains("\"results\": [\n      ]"));
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn sarif_escapes_quotes_in_excerpts() {
        let mut r = ScanReport::default();
        r.findings.push(Finding {
            rule: "thread-rng",
            file: "src/a.rs".into(),
            line: 1,
            excerpt: "let s = \"quoted\";".into(),
        });
        let doc = render_sarif(&r);
        assert!(doc.contains("let s = \\\"quoted\\\";"));
    }
}
