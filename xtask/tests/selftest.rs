//! Self-test of the analyzer: every rule must catch its seeded fixture
//! violation, every documented exemption must hold, and the real tree must
//! scan clean. A lint that silently stops firing is worse than no lint —
//! this file is the canary.

use std::collections::BTreeSet;
use std::path::Path;
use xtask::{analyze_tree, classify, scan_manifest, scan_source, FileKind, ScanReport};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rules_hit(report: &ScanReport) -> BTreeSet<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn nondet_hasher_fixture_is_caught() {
    let r = scan_source(
        "crates/core/src/fixture.rs",
        &fixture("nondet_hasher.rs"),
        FileKind::LibSource,
    );
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "nondet-hasher")
        .collect();
    assert!(
        hits.len() >= 3,
        "expected the use lines and construction sites, got {hits:?}"
    );
}

#[test]
fn nondet_hasher_is_exempt_in_tests() {
    let r = scan_source(
        "crates/core/tests/fixture.rs",
        &fixture("nondet_hasher.rs"),
        FileKind::TestOrExample,
    );
    assert!(
        !rules_hit(&r).contains("nondet-hasher"),
        "test code may hash freely: {:?}",
        r.findings
    );
}

#[test]
fn wall_clock_fixture_is_caught() {
    let r = scan_source(
        "crates/core/src/fixture.rs",
        &fixture("wall_clock.rs"),
        FileKind::LibSource,
    );
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "wall-clock")
        .collect();
    assert_eq!(hits.len(), 2, "Instant::now and SystemTime::now: {hits:?}");
}

#[test]
fn wall_clock_is_exempt_in_bench() {
    let r = scan_source(
        "crates/bench/src/fixture.rs",
        &fixture("wall_clock.rs"),
        FileKind::BenchSource,
    );
    assert!(
        r.clean(),
        "timing is the bench harness's job: {:?}",
        r.findings
    );
}

#[test]
fn thread_rng_fixture_is_caught() {
    let r = scan_source(
        "crates/core/src/fixture.rs",
        &fixture("thread_rng.rs"),
        FileKind::LibSource,
    );
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "thread-rng")
        .collect();
    assert_eq!(hits.len(), 2, "thread_rng and rand::random: {hits:?}");
}

#[test]
fn thread_rng_is_exempt_in_bench() {
    let r = scan_source(
        "crates/bench/src/fixture.rs",
        &fixture("thread_rng.rs"),
        FileKind::BenchSource,
    );
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn unwrap_fixture_is_caught_with_exemptions() {
    let r = scan_source(
        "crates/core/src/fixture.rs",
        &fixture("unwrap_in_lib.rs"),
        FileKind::LibSource,
    );
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "unwrap-in-lib")
        .collect();
    assert_eq!(
        hits.len(),
        2,
        "the two bare panics, not the waived or test ones: {hits:?}"
    );
    assert_eq!(
        r.suppressed.len(),
        1,
        "the `// lint:` waiver is recorded: {:?}",
        r.suppressed
    );
    assert!(r.suppressed[0].justification.contains("fixture waiver"));
}

#[test]
fn unjustified_allow_fixture_is_caught() {
    let r = scan_source(
        "tests/fixture.rs",
        &fixture("unjustified_allow.rs"),
        FileKind::TestOrExample,
    );
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "unjustified-allow")
        .collect();
    assert_eq!(hits.len(), 1, "only the bare allow: {hits:?}");
    assert_eq!(r.suppressed.len(), 1, "the justified allow is recorded");
}

#[test]
fn vec_bool_fixture_is_caught_in_matching_and_core() {
    for rel in [
        "crates/matching/src/fixture.rs",
        "crates/core/src/fixture.rs",
    ] {
        let r = scan_source(rel, &fixture("vec_bool.rs"), FileKind::LibSource);
        let hits: Vec<_> = r.findings.iter().filter(|f| f.rule == "vec-bool").collect();
        assert_eq!(
            hits.len(),
            2,
            "{rel}: the signature and the construction site, not the \
             comment/string mentions or the test oracle: {hits:?}"
        );
        assert_eq!(r.suppressed.len(), 1, "{rel}: the waiver is recorded");
        assert!(r.suppressed[0].justification.contains("FFI layout"));
    }
}

#[test]
fn vec_bool_is_scoped_to_the_word_parallel_crates() {
    // Other library crates may keep Vec<bool> (e.g. the sim engine's
    // served-by-id column), and test code anywhere is exempt.
    let elsewhere = scan_source(
        "crates/sim/src/fixture.rs",
        &fixture("vec_bool.rs"),
        FileKind::LibSource,
    );
    assert!(
        !rules_hit(&elsewhere).contains("vec-bool"),
        "{:?}",
        elsewhere.findings
    );
    let in_tests = scan_source(
        "crates/core/tests/fixture.rs",
        &fixture("vec_bool.rs"),
        FileKind::TestOrExample,
    );
    assert!(
        !rules_hit(&in_tests).contains("vec-bool"),
        "{:?}",
        in_tests.findings
    );
}

#[test]
fn global_state_fixture_is_caught_in_shard_crates() {
    for rel in [
        "crates/sim/src/fixture.rs",
        "crates/core/src/fixture.rs",
        "crates/matching/src/fixture.rs",
    ] {
        let r = scan_source(
            rel,
            &fixture("global_state_in_shard.rs"),
            FileKind::LibSource,
        );
        let hits: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == "global-state-in-shard")
            .collect();
        assert_eq!(
            hits.len(),
            6,
            "{rel}: the use line, both lazy statics, the mutable static, \
             thread_local! and lazy_static! — not the waived or test-gated \
             cells: {hits:?}"
        );
        assert_eq!(r.suppressed.len(), 1, "{rel}: the waiver is recorded");
        assert!(r.suppressed[0].justification.contains("fixture waiver"));
    }
}

#[test]
fn global_state_is_scoped_to_the_shard_execution_path() {
    // Crates off the shard execution path may keep lazy globals (the bench
    // harness memoizes reference outputs), and test code anywhere is exempt.
    let elsewhere = scan_source(
        "crates/workloads/src/fixture.rs",
        &fixture("global_state_in_shard.rs"),
        FileKind::LibSource,
    );
    assert!(
        !rules_hit(&elsewhere).contains("global-state-in-shard"),
        "{:?}",
        elsewhere.findings
    );
    let in_tests = scan_source(
        "crates/sim/tests/fixture.rs",
        &fixture("global_state_in_shard.rs"),
        FileKind::TestOrExample,
    );
    assert!(
        !rules_hit(&in_tests).contains("global-state-in-shard"),
        "{:?}",
        in_tests.findings
    );
}

#[test]
fn unordered_par_reduce_fixture_is_caught_in_parallel_crates() {
    for rel in [
        "crates/offline/src/fixture.rs",
        "crates/matching/src/fixture.rs",
        "crates/sim/src/fixture.rs",
    ] {
        let r = scan_source(
            rel,
            &fixture("unordered_par_reduce.rs"),
            FileKind::LibSource,
        );
        let hits: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == "unordered-par-reduce")
            .collect();
        assert_eq!(
            hits.len(),
            3,
            "{rel}: the inline reduce plus the chained fold and reduce — \
             not the waived one, the collect-terminated pipeline, the \
             serial folds or the test-gated reduce: {hits:?}"
        );
        assert_eq!(r.suppressed.len(), 1, "{rel}: the waiver is recorded");
        assert!(r.suppressed[0].justification.contains("fixture waiver"));
    }
}

#[test]
fn unordered_par_reduce_is_scoped_to_the_parallel_engine_crates() {
    // Other library crates may reduce in parallel (the bench harness
    // aggregates timing summaries), and test code anywhere is exempt.
    for (rel, kind) in [
        ("crates/core/src/fixture.rs", FileKind::LibSource),
        ("crates/workloads/src/fixture.rs", FileKind::LibSource),
        ("crates/bench/src/fixture.rs", FileKind::BenchSource),
        ("crates/offline/tests/fixture.rs", FileKind::TestOrExample),
    ] {
        let r = scan_source(rel, &fixture("unordered_par_reduce.rs"), kind);
        assert!(
            !rules_hit(&r).contains("unordered-par-reduce"),
            "{rel}: {:?}",
            r.findings
        );
    }
}

#[test]
fn clean_fixture_passes_every_rule() {
    for kind in [
        FileKind::LibSource,
        FileKind::BenchSource,
        FileKind::TestOrExample,
    ] {
        let r = scan_source("crates/core/src/fixture.rs", &fixture("clean.rs"), kind);
        assert!(r.clean(), "{kind:?}: {:?}", r.findings);
    }
}

#[test]
fn placeholder_repository_fixture_is_caught() {
    let r = scan_manifest("Cargo.toml", &fixture("placeholder_repository.toml"), true);
    assert_eq!(rules_hit(&r), BTreeSet::from(["crate-metadata"]));
}

#[test]
fn missing_metadata_fixture_is_caught() {
    let r = scan_manifest(
        "crates/fixture/Cargo.toml",
        &fixture("missing_metadata.toml"),
        false,
    );
    let excerpts: Vec<_> = r.findings.iter().map(|f| f.excerpt.as_str()).collect();
    assert_eq!(r.findings.len(), 2, "{excerpts:?}");
    assert!(excerpts.iter().any(|e| e.contains("description")));
    assert!(excerpts.iter().any(|e| e.contains("keywords")));
}

/// The acceptance gate: the repaired tree itself has zero findings. Tool
/// walls (fmt/clippy/doc) are exercised by CI's `cargo xtask analyze`; the
/// pure scan must already be clean here.
#[test]
fn real_tree_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the repo")
        .to_path_buf();
    let report = analyze_tree(&root).expect("scan the repo");
    assert!(
        report.files_scanned > 50,
        "the walk saw the whole tree, not a subset ({} files)",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "tree must be clean, found: {:#?}",
        report.findings
    );
}

/// `classify` drives which rules apply; pin the mapping for the paths the
/// repo actually has, so a refactor of the walk can't silently re-bucket
/// library code as test code.
#[test]
fn classification_of_real_paths_is_pinned() {
    for (path, kind) in [
        ("crates/matching/src/dynamic.rs", FileKind::LibSource),
        ("crates/sim/src/engine.rs", FileKind::LibSource),
        ("src/lib.rs", FileKind::LibSource),
        ("crates/bench/benches/sweep.rs", FileKind::BenchSource),
        ("crates/bench/src/bin/table1.rs", FileKind::BenchSource),
        ("tests/persistence.rs", FileKind::TestOrExample),
        ("examples/quickstart.rs", FileKind::TestOrExample),
        ("crates/model/tests/proptests.rs", FileKind::TestOrExample),
    ] {
        assert_eq!(classify(path), kind, "{path}");
    }
}
