//! Self-test of the analyzer: every rule must catch its seeded fixture
//! violation, every documented exemption must hold, and the real tree must
//! scan clean. A lint that silently stops firing is worse than no lint —
//! this file is the canary.

use std::collections::BTreeSet;
use std::path::Path;
use xtask::{
    analyze_tree, ast, classify, lex, scan_file, scan_manifest, scan_source, FileKind, ScanReport,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rules_hit(report: &ScanReport) -> BTreeSet<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

/// Full scan (string rules + AST rules + stale-waiver wall) of one fixture,
/// with the crate index built from that fixture alone.
fn scan_full(rel: &str, name: &str) -> ScanReport {
    let src = fixture(name);
    let lexed = lex::lex(&src).expect("fixture lexes");
    let trees = ast::build_trees(&lexed.tokens).expect("fixture parses");
    let index = ast::index_crate(&[(rel, trees.as_slice())]);
    scan_file(rel, &src, classify(rel), Some(&index))
}

fn count_rule(report: &ScanReport, rule: &str) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

fn suppressed_rule(report: &ScanReport, rule: &str) -> usize {
    report.suppressed.iter().filter(|s| s.rule == rule).count()
}

#[test]
fn nondet_hasher_fixture_is_caught() {
    let r = scan_source(
        "crates/core/src/fixture.rs",
        &fixture("nondet_hasher.rs"),
        FileKind::LibSource,
    );
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "nondet-hasher")
        .collect();
    assert!(
        hits.len() >= 3,
        "expected the use lines and construction sites, got {hits:?}"
    );
}

#[test]
fn nondet_hasher_is_exempt_in_tests() {
    let r = scan_source(
        "crates/core/tests/fixture.rs",
        &fixture("nondet_hasher.rs"),
        FileKind::TestOrExample,
    );
    assert!(
        !rules_hit(&r).contains("nondet-hasher"),
        "test code may hash freely: {:?}",
        r.findings
    );
}

#[test]
fn wall_clock_fixture_is_caught() {
    let r = scan_source(
        "crates/core/src/fixture.rs",
        &fixture("wall_clock.rs"),
        FileKind::LibSource,
    );
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "wall-clock")
        .collect();
    assert_eq!(hits.len(), 2, "Instant::now and SystemTime::now: {hits:?}");
}

#[test]
fn wall_clock_is_exempt_in_bench() {
    let r = scan_source(
        "crates/bench/src/fixture.rs",
        &fixture("wall_clock.rs"),
        FileKind::BenchSource,
    );
    assert!(
        r.clean(),
        "timing is the bench harness's job: {:?}",
        r.findings
    );
}

#[test]
fn thread_rng_fixture_is_caught() {
    let r = scan_source(
        "crates/core/src/fixture.rs",
        &fixture("thread_rng.rs"),
        FileKind::LibSource,
    );
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "thread-rng")
        .collect();
    assert_eq!(hits.len(), 2, "thread_rng and rand::random: {hits:?}");
}

#[test]
fn thread_rng_is_exempt_in_bench() {
    let r = scan_source(
        "crates/bench/src/fixture.rs",
        &fixture("thread_rng.rs"),
        FileKind::BenchSource,
    );
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn unwrap_fixture_is_caught_with_exemptions() {
    let r = scan_source(
        "crates/core/src/fixture.rs",
        &fixture("unwrap_in_lib.rs"),
        FileKind::LibSource,
    );
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "unwrap-in-lib")
        .collect();
    assert_eq!(
        hits.len(),
        2,
        "the two bare panics, not the waived or test ones: {hits:?}"
    );
    assert_eq!(
        r.suppressed.len(),
        1,
        "the `// lint:` waiver is recorded: {:?}",
        r.suppressed
    );
    assert!(r.suppressed[0].justification.contains("fixture waiver"));
}

#[test]
fn unjustified_allow_fixture_is_caught() {
    let r = scan_source(
        "tests/fixture.rs",
        &fixture("unjustified_allow.rs"),
        FileKind::TestOrExample,
    );
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "unjustified-allow")
        .collect();
    assert_eq!(hits.len(), 1, "only the bare allow: {hits:?}");
    assert_eq!(r.suppressed.len(), 1, "the justified allow is recorded");
}

#[test]
fn vec_bool_fixture_is_caught_in_matching_and_core() {
    for rel in [
        "crates/matching/src/fixture.rs",
        "crates/core/src/fixture.rs",
    ] {
        let r = scan_source(rel, &fixture("vec_bool.rs"), FileKind::LibSource);
        let hits: Vec<_> = r.findings.iter().filter(|f| f.rule == "vec-bool").collect();
        assert_eq!(
            hits.len(),
            2,
            "{rel}: the signature and the construction site, not the \
             comment/string mentions or the test oracle: {hits:?}"
        );
        assert_eq!(r.suppressed.len(), 1, "{rel}: the waiver is recorded");
        assert!(r.suppressed[0].justification.contains("FFI layout"));
    }
}

#[test]
fn vec_bool_is_scoped_to_the_word_parallel_crates() {
    // Other library crates may keep Vec<bool> (e.g. the sim engine's
    // served-by-id column), and test code anywhere is exempt.
    let elsewhere = scan_source(
        "crates/sim/src/fixture.rs",
        &fixture("vec_bool.rs"),
        FileKind::LibSource,
    );
    assert!(
        !rules_hit(&elsewhere).contains("vec-bool"),
        "{:?}",
        elsewhere.findings
    );
    let in_tests = scan_source(
        "crates/core/tests/fixture.rs",
        &fixture("vec_bool.rs"),
        FileKind::TestOrExample,
    );
    assert!(
        !rules_hit(&in_tests).contains("vec-bool"),
        "{:?}",
        in_tests.findings
    );
}

#[test]
fn global_state_fixture_is_caught_in_shard_crates() {
    for rel in [
        "crates/sim/src/fixture.rs",
        "crates/core/src/fixture.rs",
        "crates/matching/src/fixture.rs",
    ] {
        let r = scan_source(
            rel,
            &fixture("global_state_in_shard.rs"),
            FileKind::LibSource,
        );
        let hits: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == "global-state-in-shard")
            .collect();
        assert_eq!(
            hits.len(),
            6,
            "{rel}: the use line, both lazy statics, the mutable static, \
             thread_local! and lazy_static! — not the waived or test-gated \
             cells: {hits:?}"
        );
        assert_eq!(r.suppressed.len(), 1, "{rel}: the waiver is recorded");
        assert!(r.suppressed[0].justification.contains("fixture waiver"));
    }
}

#[test]
fn global_state_is_scoped_to_the_shard_execution_path() {
    // Crates off the shard execution path may keep lazy globals (the bench
    // harness memoizes reference outputs), and test code anywhere is exempt.
    let elsewhere = scan_source(
        "crates/workloads/src/fixture.rs",
        &fixture("global_state_in_shard.rs"),
        FileKind::LibSource,
    );
    assert!(
        !rules_hit(&elsewhere).contains("global-state-in-shard"),
        "{:?}",
        elsewhere.findings
    );
    let in_tests = scan_source(
        "crates/sim/tests/fixture.rs",
        &fixture("global_state_in_shard.rs"),
        FileKind::TestOrExample,
    );
    assert!(
        !rules_hit(&in_tests).contains("global-state-in-shard"),
        "{:?}",
        in_tests.findings
    );
}

#[test]
fn unordered_par_reduce_fixture_is_caught_in_parallel_crates() {
    for rel in [
        "crates/offline/src/fixture.rs",
        "crates/matching/src/fixture.rs",
        "crates/sim/src/fixture.rs",
    ] {
        let r = scan_source(
            rel,
            &fixture("unordered_par_reduce.rs"),
            FileKind::LibSource,
        );
        let hits: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == "unordered-par-reduce")
            .collect();
        assert_eq!(
            hits.len(),
            3,
            "{rel}: the inline reduce plus the chained fold and reduce — \
             not the waived one, the collect-terminated pipeline, the \
             serial folds or the test-gated reduce: {hits:?}"
        );
        assert_eq!(r.suppressed.len(), 1, "{rel}: the waiver is recorded");
        assert!(r.suppressed[0].justification.contains("fixture waiver"));
    }
}

#[test]
fn unordered_par_reduce_is_scoped_to_the_parallel_engine_crates() {
    // Other library crates may reduce in parallel (the bench harness
    // aggregates timing summaries), and test code anywhere is exempt.
    for (rel, kind) in [
        ("crates/core/src/fixture.rs", FileKind::LibSource),
        ("crates/workloads/src/fixture.rs", FileKind::LibSource),
        ("crates/bench/src/fixture.rs", FileKind::BenchSource),
        ("crates/offline/tests/fixture.rs", FileKind::TestOrExample),
    ] {
        let r = scan_source(rel, &fixture("unordered_par_reduce.rs"), kind);
        assert!(
            !rules_hit(&r).contains("unordered-par-reduce"),
            "{rel}: {:?}",
            r.findings
        );
    }
}

// ---- AST rules (PR 9): each fixture fires its rule, honors its waiver,
// and — where the whole point is evasion — provably slips past the string
// scanner that `scan_source` implements.

#[test]
fn rayon_capture_fixture_is_caught() {
    let rel = "crates/sim/src/fixture.rs";
    let r = scan_full(rel, "rayon_capture.rs");
    assert!(
        count_rule(&r, "rayon-capture-audit") >= 3,
        "the Mutex param, the IM struct param and the &mut capture: {:?}",
        r.findings
    );
    assert_eq!(
        suppressed_rule(&r, "rayon-capture-audit"),
        1,
        "the waived share is recorded: {:?}",
        r.suppressed
    );
    assert_eq!(
        count_rule(&r, "stale-waiver"),
        0,
        "the fixture waiver is consumed: {:?}",
        r.findings
    );
}

/// The acceptance proof for the tentpole: the line scanner has no rule
/// that can see a `Mutex` flow into a parallel closure — `scan_source`
/// returns zero findings on the same bytes the AST engine flags.
#[test]
fn rayon_capture_fixture_provably_evades_the_line_scanner() {
    let rel = "crates/sim/src/fixture.rs";
    let src = fixture("rayon_capture.rs");
    let line_scan = scan_source(rel, &src, FileKind::LibSource);
    assert!(
        line_scan.findings.is_empty(),
        "the line scanner must miss every capture: {:?}",
        line_scan.findings
    );
    let full = scan_full(rel, "rayon_capture.rs");
    assert!(count_rule(&full, "rayon-capture-audit") >= 3);
}

#[test]
fn rayon_capture_exemptions_hold() {
    // Shard-owned receivers, closure-local state and serial iteration are
    // all clean — the rule flags captures, not ownership.
    let r = scan_full("crates/sim/src/fixture.rs", "rayon_capture.rs");
    for f in r
        .findings
        .iter()
        .filter(|f| f.rule == "rayon-capture-audit")
    {
        assert!(
            f.line < 40,
            "hits must stay in the seeded-violation half: {f:?}"
        );
    }
    // Outside the parallel-engine crates the rule does not apply at all.
    let elsewhere = scan_full("crates/workloads/src/fixture.rs", "rayon_capture.rs");
    assert_eq!(count_rule(&elsewhere, "rayon-capture-audit"), 0);
}

#[test]
fn float_order_fixture_is_caught() {
    let r = scan_full("crates/offline/src/fixture.rs", "float_order_par.rs");
    assert_eq!(
        count_rule(&r, "float-order-in-par"),
        2,
        "the f64 reduce and the f32 fold — not the integer reduce, the \
         serial fold or the test-gated one: {:?}",
        r.findings
    );
    assert_eq!(
        suppressed_rule(&r, "float-order-in-par"),
        1,
        "the waived tolerance-tested sum: {:?}",
        r.suppressed
    );
    assert_eq!(count_rule(&r, "stale-waiver"), 0, "{:?}", r.findings);
}

#[test]
fn alias_hasher_fixture_is_caught_and_evades_the_line_scanner() {
    let rel = "crates/core/src/fixture.rs";
    let src = fixture("alias_hasher.rs");
    // The string scanner sees only the (waived) `use` line — every
    // downstream use of the rename and the alias chain is invisible to it.
    let line_scan = scan_source(rel, &src, FileKind::LibSource);
    assert!(
        line_scan.findings.is_empty(),
        "the rename hides every later use: {:?}",
        line_scan.findings
    );
    let full = scan_full(rel, "alias_hasher.rs");
    assert!(
        count_rule(&full, "alias-evading-hasher") >= 3,
        "the construction, the return type and the param type: {:?}",
        full.findings
    );
    assert_eq!(
        suppressed_rule(&full, "alias-evading-hasher"),
        1,
        "the waived deliberate rename use: {:?}",
        full.suppressed
    );
    assert_eq!(
        suppressed_rule(&full, "nondet-hasher"),
        1,
        "the string scanner still waives the rename declaration: {:?}",
        full.suppressed
    );
    assert_eq!(count_rule(&full, "stale-waiver"), 0, "{:?}", full.findings);
}

/// Cross-file resolution: the using file contains no hasher-like string at
/// all; only an index built over both files catches it.
#[test]
fn alias_hasher_cross_file_use_is_caught() {
    let decl_rel = "crates/core/src/fixture.rs";
    let use_rel = "crates/core/src/fixture_use.rs";
    let decl = fixture("alias_hasher.rs");
    let user = fixture("alias_hasher_use.rs");
    let decl_lex = lex::lex(&decl).expect("decl lexes");
    let decl_trees = ast::build_trees(&decl_lex.tokens).expect("decl parses");
    let use_lex = lex::lex(&user).expect("user lexes");
    let use_trees = ast::build_trees(&use_lex.tokens).expect("user parses");
    let index = ast::index_crate(&[
        (decl_rel, decl_trees.as_slice()),
        (use_rel, use_trees.as_slice()),
    ]);

    let line_scan = scan_source(use_rel, &user, FileKind::LibSource);
    assert!(
        line_scan.clean(),
        "no hasher-like string in the using file: {:?}",
        line_scan.findings
    );
    let full = scan_file(use_rel, &user, FileKind::LibSource, Some(&index));
    assert!(
        count_rule(&full, "alias-evading-hasher") >= 2,
        "the param type and the construction: {:?}",
        full.findings
    );
}

#[test]
fn lossy_id_cast_fixture_is_caught() {
    let r = scan_full("crates/core/src/fixture.rs", "lossy_id_cast.rs");
    assert_eq!(
        count_rule(&r, "lossy-id-cast"),
        3,
        "the slot encoding, the round offset and the id narrowing — not \
         the widening, same-width or test casts: {:?}",
        r.findings
    );
    assert_eq!(
        suppressed_rule(&r, "lossy-id-cast"),
        1,
        "{:?}",
        r.suppressed
    );
    assert_eq!(count_rule(&r, "stale-waiver"), 0, "{:?}", r.findings);
}

#[test]
fn panic_index_fixture_is_caught() {
    let r = scan_full("crates/matching/src/fixture.rs", "panic_index.rs");
    assert_eq!(
        count_rule(&r, "panic-path-index"),
        2,
        "the len()-1 and cursor-1 indexes — not the plain index, the \
         range, the hoisted form or the test ones: {:?}",
        r.findings
    );
    assert_eq!(
        suppressed_rule(&r, "panic-path-index"),
        1,
        "{:?}",
        r.suppressed
    );
    // The rule is scoped to hot-path crates.
    let elsewhere = scan_full("crates/workloads/src/fixture.rs", "panic_index.rs");
    assert_eq!(count_rule(&elsewhere, "panic-path-index"), 0);
}

#[test]
fn stale_waiver_is_an_error() {
    let r = scan_full("crates/core/src/fixture.rs", "stale_waiver.rs");
    assert_eq!(
        count_rule(&r, "stale-waiver"),
        1,
        "the unconsumed waiver is itself a finding: {:?}",
        r.findings
    );
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == "stale-waiver" && f.excerpt.contains("stale")),
        "the finding carries the dead justification: {:?}",
        r.findings
    );
}

#[test]
fn clean_fixture_passes_every_rule() {
    for kind in [
        FileKind::LibSource,
        FileKind::BenchSource,
        FileKind::TestOrExample,
    ] {
        let r = scan_source("crates/core/src/fixture.rs", &fixture("clean.rs"), kind);
        assert!(r.clean(), "{kind:?}: {:?}", r.findings);
    }
    // And under the full engine, including the AST rules and the wall.
    let r = scan_full("crates/core/src/fixture.rs", "clean.rs");
    assert!(r.clean(), "full engine: {:?}", r.findings);
}

#[test]
fn placeholder_repository_fixture_is_caught() {
    let r = scan_manifest("Cargo.toml", &fixture("placeholder_repository.toml"), true);
    assert_eq!(rules_hit(&r), BTreeSet::from(["crate-metadata"]));
}

#[test]
fn missing_metadata_fixture_is_caught() {
    let r = scan_manifest(
        "crates/fixture/Cargo.toml",
        &fixture("missing_metadata.toml"),
        false,
    );
    let excerpts: Vec<_> = r.findings.iter().map(|f| f.excerpt.as_str()).collect();
    assert_eq!(r.findings.len(), 2, "{excerpts:?}");
    assert!(excerpts.iter().any(|e| e.contains("description")));
    assert!(excerpts.iter().any(|e| e.contains("keywords")));
}

/// The acceptance gate: the repaired tree itself has zero findings. Tool
/// walls (fmt/clippy/doc) are exercised by CI's `cargo xtask analyze`; the
/// pure scan must already be clean here.
#[test]
fn real_tree_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the repo")
        .to_path_buf();
    let report = analyze_tree(&root).expect("scan the repo");
    assert!(
        report.files_scanned > 50,
        "the walk saw the whole tree, not a subset ({} files)",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "tree must be clean, found: {:#?}",
        report.findings
    );
    assert!(
        report.parse_fallbacks.is_empty(),
        "every real source must take the AST path, not the string fallback: {:?}",
        report.parse_fallbacks
    );
    // The AST rules really ran over the tree: the sweep engine's deliberate
    // OptCache share is audited and waived, not invisible.
    assert!(
        report
            .suppressed
            .iter()
            .any(|s| s.rule == "rayon-capture-audit" && s.file.ends_with("sweep.rs")),
        "the rayon-capture-audit waiver on the sweep cache is recorded: {:?}",
        report.suppressed
    );
}

/// `classify` drives which rules apply; pin the mapping for the paths the
/// repo actually has, so a refactor of the walk can't silently re-bucket
/// library code as test code.
#[test]
fn classification_of_real_paths_is_pinned() {
    for (path, kind) in [
        ("crates/matching/src/dynamic.rs", FileKind::LibSource),
        ("crates/sim/src/engine.rs", FileKind::LibSource),
        ("src/lib.rs", FileKind::LibSource),
        ("crates/bench/benches/sweep.rs", FileKind::BenchSource),
        ("crates/bench/src/bin/table1.rs", FileKind::BenchSource),
        ("tests/persistence.rs", FileKind::TestOrExample),
        ("examples/quickstart.rs", FileKind::TestOrExample),
        ("crates/model/tests/proptests.rs", FileKind::TestOrExample),
    ] {
        assert_eq!(classify(path), kind, "{path}");
    }
}
